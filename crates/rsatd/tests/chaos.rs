//! Chaos suite: injected faults against the daemon, with a direct
//!-solver oracle checking the core invariant — **a crashed, stalled, or
//! deadline-exceeded session never yields a wrong verdict and never
//! takes down another session**, and the daemon drains cleanly under
//! every plan.

#![cfg(feature = "faults")]

use std::sync::mpsc;
use std::time::{Duration, Instant};

use cnf::{Clause, Cnf, Lit};
use rsatd::{Daemon, DaemonConfig, DaemonError, Verdict};
use sat_solver::Solver;

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A small random 3-SAT instance: solved in milliseconds, non-trivial
/// enough that a wrong verdict would not be a coin flip.
fn random_3sat(num_vars: u32, num_clauses: u32, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = XorShift::new(seed.wrapping_mul(2).wrapping_add(1));
    let mut clauses = Vec::new();
    for _ in 0..num_clauses {
        let mut lits: Vec<i64> = Vec::with_capacity(3);
        while lits.len() < 3 {
            let v = rng.below(num_vars as u64) as i64 + 1;
            if lits.iter().any(|l| l.abs() == v) {
                continue;
            }
            lits.push(if rng.below(2) == 0 { v } else { -v });
        }
        clauses.push(lits);
    }
    clauses
}

/// Ground truth from a direct, daemon-free solver run.
fn oracle_verdict(num_vars: u32, clauses: &[Vec<i64>]) -> Verdict {
    let mut f = Cnf::new(num_vars);
    for clause in clauses {
        let lits: Vec<Lit> = clause.iter().map(|&l| Lit::from_dimacs(l as i32)).collect();
        f.add_clause(Clause::from_lits(lits));
    }
    let mut solver = Solver::from_cnf(&f);
    if solver.solve().is_sat() {
        Verdict::Sat
    } else {
        Verdict::Unsat
    }
}

const VARS: u32 = 60;
const CLAUSES: u32 = 250;

fn chaos_config() -> DaemonConfig {
    DaemonConfig {
        workers: 2,
        queue_depth: 16,
        default_deadline: Duration::from_secs(10),
        ..DaemonConfig::default()
    }
}

fn open_instance(daemon: &Daemon, seed: u64) -> (u64, Verdict) {
    let clauses = random_3sat(VARS, CLAUSES, seed);
    let sid = daemon.open(VARS, false).expect("open session");
    daemon.add_clauses(sid, &clauses).expect("seed clauses");
    (sid, oracle_verdict(VARS, &clauses))
}

#[test]
fn session_panic_quarantines_only_its_session() {
    let plan: faults::FaultPlan = "session-panic(session=2)".parse().unwrap();
    let scope = faults::install(plan);

    let daemon = Daemon::start(chaos_config());
    let instances: Vec<(u64, Verdict)> = (0..3).map(|i| open_instance(&daemon, 10 + i)).collect();
    assert_eq!(instances[1].0, 2, "second session gets id 2");

    for &(sid, ref expected) in &instances {
        let outcome = daemon.solve(sid, &[], None);
        if sid == 2 {
            let err = outcome.expect_err("the injected panic must surface as an error");
            assert!(
                matches!(err, DaemonError::SessionCrashed(2, _)),
                "expected a crash quarantine, got {err}"
            );
        } else {
            assert_eq!(
                &outcome.unwrap().verdict,
                expected,
                "an uninjected session must match the oracle"
            );
        }
    }
    assert_eq!(scope.fired(faults::site::SESSION_PANIC), 1);
    assert_eq!(daemon.stats().crashed, 1);

    // The quarantine holds: every later call on session 2 is the same
    // typed error, and the panic message is preserved.
    match daemon.solve(2, &[], None) {
        Err(DaemonError::SessionCrashed(2, msg)) => {
            assert!(msg.contains("injected fault"), "panic message kept: {msg}")
        }
        other => panic!("expected quarantine, got {other:?}"),
    }
    // Untouched sessions keep answering correctly after the crash.
    let (sid, expected) = &instances[2];
    assert_eq!(&daemon.solve(*sid, &[], None).unwrap().verdict, expected);
    // Cleanup path: a crashed session can be closed.
    daemon.close(2).unwrap();
    daemon.shutdown();
}

#[test]
fn scheduler_stall_degrades_to_deadline_not_wrong_answer() {
    let plan: faults::FaultPlan = "scheduler-stall(delay_ms=300,times=1)".parse().unwrap();
    let scope = faults::install(plan);

    let daemon = Daemon::start(DaemonConfig {
        workers: 1,
        ..chaos_config()
    });
    let (sid, expected) = open_instance(&daemon, 42);

    // The stalled worker sits on the job until well past this deadline.
    let reply = daemon
        .solve(sid, &[], Some(Duration::from_millis(50)))
        .unwrap();
    assert_eq!(
        reply.verdict,
        Verdict::Unknown("deadline".to_string()),
        "a stalled solve degrades to unknown, never to a guessed verdict"
    );
    assert_eq!(scope.fired(faults::site::SCHEDULER_STALL), 1);
    assert!(daemon.stats().deadline_exceeded >= 1);

    // The session survived its degradation and now answers correctly.
    assert_eq!(daemon.solve(sid, &[], None).unwrap().verdict, expected);
    daemon.shutdown();
}

#[test]
fn overload_rejects_busy_in_bounded_time_while_admitted_work_finishes() {
    // One worker stalled long enough for the queue to be observably
    // full; queue depth 1 so the third solve must be rejected. The
    // stall is generous (2 s) because the test polls its way into the
    // pressure window instead of racing a sleep against it.
    let plan: faults::FaultPlan = "scheduler-stall(delay_ms=2000,times=1)".parse().unwrap();
    let scope = faults::install(plan);

    let daemon = Daemon::start(DaemonConfig {
        workers: 1,
        queue_depth: 1,
        retry_after_ms: 77,
        ..chaos_config()
    });
    let a = open_instance(&daemon, 1);
    let b = open_instance(&daemon, 2);
    let c = open_instance(&daemon, 3);

    let (tx, rx) = mpsc::channel();
    for (i, &(sid, _)) in [&a, &b].into_iter().enumerate() {
        let tx = tx.clone();
        daemon
            .submit_solve(
                sid,
                vec![],
                None,
                Box::new(move |_rid, outcome| {
                    let _ = tx.send((sid, outcome));
                }),
            )
            .expect("first two solves are admitted");
        if i == 0 {
            // Job A must leave the queue (the worker takes it, then
            // stalls 2 s inside the injection) before job B is
            // submitted, or B races the worker for the single slot.
            let taken = Instant::now();
            while daemon.status().queued > 0 {
                assert!(
                    taken.elapsed() < Duration::from_secs(5),
                    "worker never took the first job"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    // Wait for the pressure state itself, not a guessed delay: the
    // worker holds job A (stalled mid-injection) while job B occupies
    // the queue's only slot. Observing it leaves nearly the whole 2 s
    // stall as margin to submit the third solve.
    let pressured = Instant::now();
    while !{
        let s = daemon.status();
        s.running >= 1 && s.queued >= 1
    } {
        assert!(
            pressured.elapsed() < Duration::from_secs(5),
            "daemon never reached the stalled-worker + full-queue state"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    let started = Instant::now();
    let err = match daemon.solve(c.0, &[], None) {
        Ok(reply) => panic!(
            "queue not full: admitted {reply:?} (stall fired {} times, status {:?})",
            scope.fired(faults::site::SCHEDULER_STALL),
            daemon.status()
        ),
        Err(e) => e,
    };
    let rejected_in = started.elapsed();
    assert!(
        matches!(err, DaemonError::Busy { retry_after_ms: 77 }),
        "expected busy with the retry hint, got {err}"
    );
    // The bound must beat the 2 s stall by a wide margin (the
    // rejection is synchronous, never parked behind the stalled
    // worker) while tolerating a loaded test host.
    assert!(
        rejected_in < Duration::from_millis(250),
        "overload rejection must be immediate, took {rejected_in:?}"
    );

    // The admitted solves still finish, correctly.
    let mut seen = 0;
    while seen < 2 {
        let (sid, outcome) = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        let expected = if sid == a.0 { &a.1 } else { &b.1 };
        assert_eq!(&outcome.unwrap().verdict, expected);
        seen += 1;
    }
    assert!(daemon.stats().rejected >= 1);
    daemon.shutdown();
}

#[cfg(unix)]
#[test]
fn socket_truncate_kills_the_connection_not_the_daemon() {
    use rsatd::{serve_connection, Client};
    use std::io::BufReader;
    use std::os::unix::net::UnixStream;

    let plan: faults::FaultPlan = "socket-truncate(after=16)".parse().unwrap();
    let _scope = faults::install(plan);

    let daemon = Daemon::start(chaos_config());

    let connect = |daemon: &Daemon| {
        let (server_side, client_side) = UnixStream::pair().unwrap();
        let d = daemon.clone();
        let handle = std::thread::spawn(move || {
            let reader = BufReader::new(server_side.try_clone().unwrap());
            serve_connection(&d, reader, server_side);
        });
        let reader = BufReader::new(client_side.try_clone().unwrap());
        (Client::new(reader, client_side), handle)
    };

    // First connection draws the truncating writer (times=1): its first
    // full response blows the 16-byte budget, so the connection dies.
    let (mut doomed, doomed_thread) = connect(&daemon);
    let outcome = doomed.open(2, false, &[vec![1]], &[]);
    assert!(
        outcome.is_err(),
        "a truncated response must surface as a client error"
    );
    doomed_thread.join().expect("server thread exits cleanly");

    // The daemon is untouched: a fresh connection gets full service.
    let (mut healthy, healthy_thread) = connect(&daemon);
    let sid = healthy.open(2, false, &[vec![1, 2]], &[]).unwrap();
    assert_eq!(healthy.solve(sid, &[], None).unwrap().verdict, "sat");
    drop(healthy);
    healthy_thread.join().unwrap();
    daemon.shutdown();
}

#[test]
fn drain_is_clean_under_every_plan() {
    // Under each plan: admit a batch of solves, shut down immediately,
    // and require every admitted solve to have been answered — with a
    // verdict matching the oracle unless that session was the one
    // injected to crash.
    let plans = [
        "",
        "session-panic(session=1)",
        "scheduler-stall(delay_ms=100,times=2)",
        "session-panic(session=2);scheduler-stall(delay_ms=50,times=1)",
    ];
    for plan_text in plans {
        let plan: faults::FaultPlan = plan_text.parse().unwrap();
        let scope = faults::install(plan);

        let daemon = Daemon::start(chaos_config());
        let instances: Vec<(u64, Verdict)> =
            (0..3).map(|i| open_instance(&daemon, 70 + i)).collect();
        let (tx, rx) = mpsc::channel();
        for &(sid, _) in &instances {
            let tx = tx.clone();
            daemon
                .submit_solve(
                    sid,
                    vec![],
                    None,
                    Box::new(move |_rid, outcome| {
                        let _ = tx.send((sid, outcome));
                    }),
                )
                .expect("admission before drain");
        }
        daemon.shutdown();

        let mut answered = 0;
        while let Ok((sid, outcome)) = rx.try_recv() {
            answered += 1;
            let expected = &instances.iter().find(|(s, _)| *s == sid).unwrap().1;
            match outcome {
                Ok(reply) => assert_eq!(
                    &reply.verdict, expected,
                    "plan `{plan_text}`: wrong verdict for session {sid}"
                ),
                Err(DaemonError::SessionCrashed(..)) => {
                    assert!(
                        plan_text.contains("session-panic"),
                        "plan `{plan_text}`: unexpected crash on session {sid}"
                    );
                }
                Err(other) => panic!("plan `{plan_text}`: unexpected error {other}"),
            }
        }
        assert_eq!(
            answered,
            instances.len(),
            "plan `{plan_text}`: drain must answer every admitted solve"
        );
        drop(scope);
    }
}

fn temp_records_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rsatd-chaos-records-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

/// Parses every line of a request-records file, panicking on a torn or
/// non-JSON line.
fn read_records(path: &std::path::Path) -> Vec<telemetry::json::Json> {
    let raw = std::fs::read_to_string(path).expect("records file exists");
    assert!(
        raw.is_empty() || raw.ends_with('\n'),
        "records file must end on a line boundary: {raw:?}"
    );
    raw.lines()
        .map(|line| {
            telemetry::json::Json::parse(line)
                .unwrap_or_else(|e| panic!("torn record line {line:?}: {e}"))
        })
        .collect()
}

#[test]
fn every_admitted_request_emits_exactly_one_terminal_record() {
    use telemetry::json::Json;

    // One injected crash (session 2), two healthy sessions, plus a
    // zero-deadline solve that degrades in the queue — every admitted
    // request, however it ends, must leave exactly one terminal
    // RequestRecord, and shutdown's drain must not lose the tail.
    let plan: faults::FaultPlan = "session-panic(session=2)".parse().unwrap();
    let scope = faults::install(plan);

    let records_path = temp_records_path("exactly-once");
    let daemon = Daemon::start(DaemonConfig {
        request_records_path: Some(records_path.clone()),
        ..chaos_config()
    });
    let instances: Vec<(u64, Verdict)> = (0..3).map(|i| open_instance(&daemon, 200 + i)).collect();

    let (tx, rx) = mpsc::channel();
    let mut admitted = Vec::new();
    for &(sid, _) in &instances {
        let tx = tx.clone();
        let rid = daemon
            .submit_solve(
                sid,
                vec![],
                None,
                Box::new(move |rid, outcome| {
                    let _ = tx.send((rid, outcome));
                }),
            )
            .expect("admission");
        admitted.push(rid);
    }
    // The zero-deadline solve gets its own session: the others are
    // still Busy with their first solve, and a session admits one
    // in-flight solve at a time.
    let (deadline_sid, _) = open_instance(&daemon, 250);
    let deadline_tx = tx.clone();
    admitted.push(
        daemon
            .submit_solve(
                deadline_sid,
                vec![],
                Some(Duration::ZERO),
                Box::new(move |rid, outcome| {
                    let _ = deadline_tx.send((rid, outcome));
                }),
            )
            .expect("admission"),
    );
    // Shutdown immediately: whatever is still queued is drained, not
    // dropped, so its records land too.
    daemon.shutdown();
    assert_eq!(scope.fired(faults::site::SESSION_PANIC), 1);

    // Every admitted request answered its callback with its own id.
    let mut answered: Vec<u64> = Vec::new();
    while let Ok((rid, _)) = rx.try_recv() {
        answered.push(rid);
    }
    answered.sort_unstable();
    let mut expected = admitted.clone();
    expected.sort_unstable();
    assert_eq!(answered, expected, "one callback per admitted request");

    let records = read_records(&records_path);
    let mut recorded: Vec<u64> = records
        .iter()
        .map(|line| {
            assert_eq!(
                line.get("event").and_then(Json::as_str),
                Some("request_end"),
                "unexpected event line: {line}"
            );
            line.get("record")
                .and_then(|r| r.get("request_id"))
                .and_then(Json::as_u64)
                .expect("record carries its request_id")
        })
        .collect();
    recorded.sort_unstable();
    assert_eq!(
        recorded, expected,
        "exactly one terminal record per admitted request"
    );

    // The crash and the deadline degradation are both visible in the
    // records, not just in callbacks.
    let field = |line: &Json, key: &str| {
        line.get("record")
            .and_then(|r| r.get(key))
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    assert!(
        records
            .iter()
            .any(|l| field(l, "error_kind").as_deref() == Some("crashed")),
        "the quarantined solve must record error_kind=crashed"
    );
    assert!(
        records
            .iter()
            .any(|l| field(l, "stop_cause").as_deref() == Some("deadline")),
        "the zero-deadline solve must record stop_cause=deadline"
    );
    let _ = std::fs::remove_file(&records_path);
}

#[cfg(unix)]
#[test]
fn socket_truncate_never_tears_a_record_line() {
    use rsatd::serve_connection;
    use std::io::{BufReader, Read as _, Write as _};
    use std::os::unix::net::UnixStream;

    // Sweep the truncation budget across "dies instantly", "dies
    // mid-reply", and "survives": in every case the records file — a
    // different sink than the socket — holds exactly one complete JSONL
    // line for the admitted solve.
    for budget in [0u64, 8, 24, 64, 400] {
        let plan: faults::FaultPlan = format!("socket-truncate(after={budget})").parse().unwrap();
        let _scope = faults::install(plan);

        let records_path = temp_records_path("truncate");
        let daemon = Daemon::start(DaemonConfig {
            request_records_path: Some(records_path.clone()),
            ..chaos_config()
        });
        // Open via the typed API so the doomed connection's first write
        // is the solve reply itself, truncated at the byte budget.
        let (sid, _) = open_instance(&daemon, 300 + budget);

        let (server_side, client_side) = UnixStream::pair().unwrap();
        let d = daemon.clone();
        let server = std::thread::spawn(move || {
            let reader = BufReader::new(server_side.try_clone().unwrap());
            serve_connection(&d, reader, server_side);
        });
        // Raw write + half-close instead of a Client: the reply may die
        // at the budget before the line completes, so a synchronous
        // round-trip could block forever waiting for it. Half-closing
        // lets the read loop see EOF while the solve is in flight.
        let mut writer = client_side.try_clone().unwrap();
        writeln!(writer, "{{\"id\":1,\"op\":\"solve\",\"session\":{sid}}}").unwrap();
        client_side
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        // Drain whatever fraction of the reply survives the budget.
        let mut drained = String::new();
        let _ = BufReader::new(client_side).read_to_string(&mut drained);
        server.join().unwrap();
        daemon.shutdown();

        let records = read_records(&records_path);
        assert_eq!(
            records.len(),
            1,
            "budget {budget}: the admitted solve leaves exactly one complete record"
        );
        let _ = std::fs::remove_file(&records_path);
    }
}

#[test]
fn faulted_verdicts_never_contradict_the_oracle_across_a_sweep() {
    // A broader sweep: many instances through a daemon whose scheduler
    // stalls intermittently, verdicts cross-checked one by one.
    let plan: faults::FaultPlan = "scheduler-stall(delay_ms=20,times=5)".parse().unwrap();
    let _scope = faults::install(plan);

    let daemon = Daemon::start(chaos_config());
    for seed in 100..112 {
        let (sid, expected) = open_instance(&daemon, seed);
        let reply = daemon.solve(sid, &[], None).unwrap();
        assert_eq!(
            reply.verdict, expected,
            "seed {seed}: daemon and oracle disagree"
        );
        daemon.close(sid).unwrap();
    }
    daemon.shutdown();
}
