//! Robustness wall for the typed daemon API: admission control,
//! eviction, deadlines, drain, and session lifecycle errors — all
//! without fault injection (the injected-failure half lives in
//! `chaos.rs`).

use std::sync::mpsc;
use std::time::Duration;

use rsatd::{Daemon, DaemonConfig, DaemonError, Verdict};

fn quick_config() -> DaemonConfig {
    DaemonConfig {
        workers: 2,
        default_deadline: Duration::from_secs(5),
        ..DaemonConfig::default()
    }
}

/// 3 variables, satisfiable, forced `x2 = true`.
const SAT_CLAUSES: &[&[i64]] = &[&[1, 2], &[-1, 2], &[2, 3]];

fn sat_clauses() -> Vec<Vec<i64>> {
    SAT_CLAUSES.iter().map(|c| c.to_vec()).collect()
}

#[test]
fn session_lifecycle_solve_model_core() {
    let daemon = Daemon::start(quick_config());
    let sid = daemon.open(3, false).unwrap();
    daemon.add_clauses(sid, &sat_clauses()).unwrap();

    let reply = daemon.solve(sid, &[], None).unwrap();
    assert_eq!(reply.verdict, Verdict::Sat);
    let model = daemon.model(sid).unwrap();
    assert_eq!(model.len(), 3);
    assert!(model.contains(&2), "x2 is forced true: {model:?}");
    assert!(
        matches!(daemon.core(sid), Err(DaemonError::NoCore(_))),
        "core after SAT must be a typed error"
    );

    // Assumptions flip the verdict; the core mentions a culprit.
    let reply = daemon.solve(sid, &[-2], None).unwrap();
    assert_eq!(reply.verdict, Verdict::Unsat);
    let core = daemon.core(sid).unwrap();
    assert!(!core.is_empty());
    assert!(
        matches!(daemon.model(sid), Err(DaemonError::NoModel(_))),
        "model after UNSAT must be a typed error"
    );

    // The session survives both and keeps answering.
    assert_eq!(daemon.solve(sid, &[], None).unwrap().verdict, Verdict::Sat);
    daemon.close(sid).unwrap();
    daemon.shutdown();
}

#[test]
fn learned_state_persists_across_calls() {
    let daemon = Daemon::start(quick_config());
    let sid = daemon.open(3, false).unwrap();
    daemon.add_clauses(sid, &sat_clauses()).unwrap();
    let first = daemon.solve(sid, &[3], None).unwrap();
    let second = daemon.solve(sid, &[3], None).unwrap();
    assert_eq!(first.verdict, Verdict::Sat);
    assert_eq!(second.verdict, Verdict::Sat);
    assert!(
        second.propagations <= first.propagations + 8,
        "a repeated query must not get more expensive: {} then {}",
        first.propagations,
        second.propagations
    );
    daemon.shutdown();
}

#[test]
fn session_errors_are_typed() {
    let daemon = Daemon::start(quick_config());
    assert!(matches!(
        daemon.solve(99, &[], None),
        Err(DaemonError::NoSuchSession(99))
    ));

    let sid = daemon.open(3, false).unwrap();
    assert!(matches!(
        daemon.add_clauses(sid, &[vec![1, -4]]),
        Err(DaemonError::VarOutOfRange { lit: -4, .. })
    ));
    assert!(matches!(
        daemon.solve(sid, &[4], None),
        Err(DaemonError::VarOutOfRange { lit: 4, .. })
    ));
    assert!(matches!(
        daemon.add_clauses(sid, &[vec![0]]),
        Err(DaemonError::VarOutOfRange { lit: 0, .. })
    ));

    daemon.close(sid).unwrap();
    assert!(
        matches!(daemon.close(sid), Err(DaemonError::SessionClosed(_))),
        "double-close must be a typed error"
    );
    assert!(matches!(
        daemon.solve(sid, &[], None),
        Err(DaemonError::SessionClosed(_))
    ));
    assert!(matches!(
        daemon.add_clauses(sid, &[vec![1]]),
        Err(DaemonError::SessionClosed(_))
    ));
    daemon.shutdown();
}

#[test]
fn zero_queue_depth_rejects_busy_with_retry_hint() {
    let daemon = Daemon::start(DaemonConfig {
        queue_depth: 0,
        retry_after_ms: 250,
        ..quick_config()
    });
    let sid = daemon.open(3, false).unwrap();
    let err = daemon.solve(sid, &[], None).unwrap_err();
    assert!(matches!(
        err,
        DaemonError::Busy {
            retry_after_ms: 250
        }
    ));
    assert_eq!(err.kind(), "busy");
    assert_eq!(err.retry_after_ms(), Some(250));
    assert_eq!(daemon.stats().rejected, 1);
    daemon.shutdown();
}

#[test]
fn session_cap_rejects_open() {
    let daemon = Daemon::start(DaemonConfig {
        max_sessions: 2,
        ..quick_config()
    });
    daemon.open(2, false).unwrap();
    daemon.open(2, false).unwrap();
    assert!(matches!(
        daemon.open(2, false),
        Err(DaemonError::Busy { .. })
    ));
    assert_eq!(daemon.stats().rejected, 1);
    daemon.shutdown();
}

#[test]
fn memory_pressure_evicts_lru_idle_session() {
    let daemon = Daemon::start(quick_config());
    let probe = daemon.open(1000, false).unwrap();
    let per_session = daemon.status().memory_bytes;
    assert!(per_session > 0);
    daemon.close(probe).unwrap();

    // Room for one-and-a-half sessions: the second open must evict the
    // first instead of failing.
    let daemon = Daemon::start(DaemonConfig {
        max_memory_bytes: per_session + per_session / 2,
        ..quick_config()
    });
    let first = daemon.open(1000, false).unwrap();
    let second = daemon.open(1000, false).unwrap();
    assert!(matches!(
        daemon.solve(first, &[], None),
        Err(DaemonError::SessionEvicted(_, "memory"))
    ));
    assert!(daemon.solve(second, &[], None).is_ok());
    assert_eq!(daemon.stats().evicted, 1);
    daemon.shutdown();
}

#[test]
fn memory_cap_too_small_for_anyone_rejects_open() {
    let daemon = Daemon::start(DaemonConfig {
        max_memory_bytes: 1,
        ..quick_config()
    });
    assert!(matches!(
        daemon.open(1000, false),
        Err(DaemonError::Busy { .. })
    ));
    daemon.shutdown();
}

#[test]
fn idle_sessions_are_evicted_and_report_why() {
    let daemon = Daemon::start(DaemonConfig {
        idle_timeout: Duration::from_millis(1),
        ..quick_config()
    });
    let old = daemon.open(3, false).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    // Any admission path runs the sweep.
    let fresh = daemon.open(3, false).unwrap();
    let err = daemon.solve(old, &[], None).unwrap_err();
    assert!(matches!(err, DaemonError::SessionEvicted(_, "idle")));
    assert_eq!(err.kind(), "evicted");
    assert_eq!(daemon.stats().evicted, 1);
    // Closing an evicted session is the cleanup path and succeeds.
    daemon.close(old).unwrap();
    let _ = fresh;
    daemon.shutdown();
}

#[test]
fn zero_deadline_degrades_to_unknown_and_session_survives() {
    let daemon = Daemon::start(quick_config());
    let sid = daemon.open(3, false).unwrap();
    daemon.add_clauses(sid, &sat_clauses()).unwrap();
    let reply = daemon.solve(sid, &[], Some(Duration::ZERO)).unwrap();
    assert_eq!(reply.verdict, Verdict::Unknown("deadline".to_string()));
    assert_eq!(daemon.stats().deadline_exceeded, 1);
    // Degradation, not damage: the same session still solves.
    assert_eq!(daemon.solve(sid, &[], None).unwrap().verdict, Verdict::Sat);
    daemon.shutdown();
}

#[test]
fn drain_rejects_new_work_and_shutdown_answers_all_inflight() {
    let daemon = Daemon::start(quick_config());
    let mut sessions = Vec::new();
    for _ in 0..4 {
        let sid = daemon.open(3, false).unwrap();
        daemon.add_clauses(sid, &sat_clauses()).unwrap();
        sessions.push(sid);
    }
    let (tx, rx) = mpsc::channel();
    for &sid in &sessions {
        let tx = tx.clone();
        daemon
            .submit_solve(
                sid,
                vec![],
                None,
                Box::new(move |_rid, outcome| {
                    let _ = tx.send(outcome);
                }),
            )
            .unwrap();
    }
    daemon.shutdown();
    // Every admitted solve was answered before shutdown returned.
    let mut answered = 0;
    while let Ok(outcome) = rx.try_recv() {
        assert_eq!(outcome.unwrap().verdict, Verdict::Sat);
        answered += 1;
    }
    assert_eq!(answered, sessions.len());

    // Past the drain, nothing is admitted.
    assert!(matches!(
        daemon.solve(sessions[0], &[], None),
        Err(DaemonError::Draining)
    ));
    assert!(matches!(daemon.open(2, false), Err(DaemonError::Draining)));
    // Idempotent.
    daemon.shutdown();
}

#[test]
fn concurrent_solve_on_same_session_is_typed_busy() {
    let daemon = Daemon::start(DaemonConfig {
        workers: 1,
        ..quick_config()
    });
    let sid = daemon.open(3, false).unwrap();
    daemon.add_clauses(sid, &sat_clauses()).unwrap();
    let (tx, rx) = mpsc::channel();
    daemon
        .submit_solve(
            sid,
            vec![],
            None,
            Box::new(move |_rid, outcome| {
                let _ = tx.send(outcome);
            }),
        )
        .unwrap();
    // While queued or running, a second solve on the same session is a
    // typed error, not a queue entry.
    match daemon.solve(sid, &[], None) {
        Err(DaemonError::SessionBusy(_)) => {}
        Ok(_) => {
            // The first solve already finished; nothing to assert.
        }
        Err(other) => panic!("expected session-busy, got {other}"),
    }
    rx.recv().unwrap().unwrap();
    daemon.shutdown();
}

#[test]
fn session_handle_closes_on_drop() {
    let daemon = Daemon::start(quick_config());
    let sid;
    {
        let handle = daemon.open_session(3, false).unwrap();
        sid = handle.id();
        handle.add_clauses(&sat_clauses()).unwrap();
        assert_eq!(handle.solve(&[], None).unwrap().verdict, Verdict::Sat);
    }
    assert!(matches!(
        daemon.solve(sid, &[], None),
        Err(DaemonError::SessionClosed(_))
    ));
    daemon.shutdown();
}

#[test]
fn stats_and_status_track_the_story() {
    let daemon = Daemon::start(quick_config());
    let sid = daemon.open(3, false).unwrap();
    daemon.add_clauses(sid, &sat_clauses()).unwrap();
    daemon.solve(sid, &[], None).unwrap();
    let stats = daemon.stats();
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.crashed, 0);
    let status = daemon.status();
    assert_eq!(status.sessions, 1);
    assert!(!status.draining);
    assert!(status.memory_bytes > 0);
    daemon.shutdown();
    assert!(daemon.status().draining);
}
