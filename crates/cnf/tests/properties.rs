//! Property tests for the CNF data structures and DIMACS I/O.

use cnf::{parse_dimacs_str, to_dimacs_string, verify_model, Clause, Cnf, Lit, Var};
use proptest::prelude::*;

fn arb_cnf() -> impl Strategy<Value = Cnf> {
    let lit = (1i32..=20).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = proptest::collection::vec(lit, 0..6);
    proptest::collection::vec(clause, 0..40).prop_map(|clauses| {
        let mut f = Cnf::new(20);
        for c in clauses {
            f.add_clause(c.iter().copied().map(Lit::from_dimacs).collect());
        }
        f
    })
}

proptest! {
    #[test]
    fn dimacs_roundtrip_is_identity(f in arb_cnf()) {
        let text = to_dimacs_string(&f);
        let parsed = parse_dimacs_str(&text).expect("own output parses");
        prop_assert_eq!(f, parsed);
    }

    #[test]
    fn eval_total_matches_clause_semantics(
        f in arb_cnf(),
        bits in proptest::collection::vec(any::<bool>(), 20)
    ) {
        let expected = f
            .clauses()
            .iter()
            .all(|c| c.lits().iter().any(|l| l.eval(bits[l.var().index() as usize])));
        prop_assert_eq!(f.eval(&bits), Some(expected));
        prop_assert_eq!(verify_model(&f, &bits).is_ok(), expected);
    }

    #[test]
    fn normalize_preserves_semantics(
        mut c_lits in proptest::collection::vec((1i32..=8).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]), 1..8),
        bits in proptest::collection::vec(any::<bool>(), 8)
    ) {
        c_lits.sort_unstable();
        let mut c: Clause = c_lits.iter().copied().map(Lit::from_dimacs).collect();
        let value_before = c.lits().iter().any(|l| l.eval(bits[l.var().index() as usize]));
        let taut = c.normalize();
        if taut {
            // tautologies are true under every assignment
            prop_assert!(c_lits.iter().any(|&a| c_lits.contains(&-a)));
        } else {
            let value_after = c.lits().iter().any(|l| l.eval(bits[l.var().index() as usize]));
            prop_assert_eq!(value_before, value_after);
        }
    }

    #[test]
    fn lit_code_roundtrip(code in 0u32..10_000) {
        let l = Lit::from_code(code);
        prop_assert_eq!(l.code(), code);
        prop_assert_eq!(Lit::new(l.var(), l.is_negated()), l);
    }

    #[test]
    fn simplify_trivial_preserves_satisfying_assignments(
        f in arb_cnf(),
        bits in proptest::collection::vec(any::<bool>(), 20)
    ) {
        let before = f.eval(&bits);
        let mut g = f.clone();
        g.simplify_trivial();
        // simplification removes tautologies and duplicate literals only,
        // which never changes the formula's truth value
        prop_assert_eq!(before, g.eval(&bits));
    }

    #[test]
    fn stats_are_consistent(f in arb_cnf()) {
        let s = f.stats();
        prop_assert_eq!(s.num_clauses, f.num_clauses());
        prop_assert_eq!(s.num_lits, f.num_lits());
        prop_assert_eq!(
            s.unit_clauses + s.binary_clauses + s.ternary_clauses + s.long_clauses,
            s.num_clauses
        );
        prop_assert_eq!(s.graph_nodes(), f.num_vars() as usize + f.num_clauses());
    }
}

proptest! {
    #[test]
    fn compact_is_semantics_preserving(
        f in arb_cnf(),
        bits in proptest::collection::vec(any::<bool>(), 20)
    ) {
        let (g, map) = f.compact();
        prop_assert!(g.num_vars() <= f.num_vars());
        let mut new_bits = vec![false; g.num_vars() as usize];
        for (old, new) in map.iter().enumerate() {
            if let Some(n) = new {
                new_bits[*n as usize] = bits[old];
            }
        }
        prop_assert_eq!(f.eval(&bits), g.eval(&new_bits));
    }

    #[test]
    fn conjoin_evaluates_as_and(
        a in arb_cnf(),
        b in arb_cnf(),
        bits in proptest::collection::vec(any::<bool>(), 20)
    ) {
        let mut joined = a.clone();
        joined.conjoin(&b);
        let expected = match (a.eval(&bits), b.eval(&bits)) {
            (Some(x), Some(y)) => Some(x && y),
            _ => None,
        };
        prop_assert_eq!(joined.eval(&bits), expected);
    }
}

#[test]
fn var_ordering_is_index_ordering() {
    let vars: Vec<Var> = (0..10).map(Var::new).collect();
    for w in vars.windows(2) {
        assert!(w[0] < w[1]);
    }
}
