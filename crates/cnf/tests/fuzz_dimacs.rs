//! Fuzz-style robustness properties for the DIMACS parser: on *any*
//! byte sequence — raw noise, token-shaped noise, or a valid prefix with
//! a corrupted tail — `parse_dimacs` must return `Ok` or `Err`. A panic
//! fails the test; an allocation proportional to a hostile header would
//! OOM it (the parser never preallocates from declared sizes).

use cnf::parse_dimacs;
use proptest::prelude::*;

/// Bytes skewed toward DIMACS-relevant characters so the fuzzer reaches
/// deep parser states (numbers, signs, comments) instead of bailing at
/// the first byte.
fn arb_tokenish_bytes() -> impl Strategy<Value = Vec<u8>> {
    let byte = prop_oneof![
        Just(b'0'),
        Just(b'1'),
        Just(b'9'),
        Just(b'-'),
        Just(b' '),
        Just(b'\n'),
        Just(b'p'),
        Just(b'c'),
        Just(b'n'),
        Just(b'f'),
        any::<u8>(),
    ];
    proptest::collection::vec(byte, 0..256)
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_dimacs(bytes.as_slice());
    }

    #[test]
    fn tokenish_bytes_never_panic(bytes in arb_tokenish_bytes()) {
        let _ = parse_dimacs(bytes.as_slice());
    }

    #[test]
    fn corrupted_tail_never_panics(tail in arb_tokenish_bytes(), vars in 0u64..=20, clauses in 0u64..=1_000_000_000_000) {
        // A plausible header (possibly declaring absurd clause counts)
        // followed by junk: must parse or error, never panic or OOM.
        let mut input = format!("p cnf {vars} {clauses}\n1 2 0\n").into_bytes();
        input.extend(tail);
        let _ = parse_dimacs(input.as_slice());
    }
}
