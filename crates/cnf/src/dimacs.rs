//! DIMACS CNF reading and writing.
//!
//! The parser accepts the common dialect: `c` comment lines anywhere, one
//! `p cnf <vars> <clauses>` header, whitespace-separated signed literals
//! terminated by `0`, clauses spanning multiple lines, and a missing final
//! terminator at end of input.

use crate::{Clause, Cnf, Lit};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// An error produced while parsing DIMACS input.
#[derive(Debug)]
pub enum ParseDimacsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content, with a line number and message.
    Syntax {
        /// One-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::Io(e) => write!(f, "i/o error reading DIMACS: {e}"),
            ParseDimacsError::Syntax { line, message } => {
                write!(f, "DIMACS syntax error at line {line}: {message}")
            }
        }
    }
}

impl Error for ParseDimacsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseDimacsError::Io(e) => Some(e),
            ParseDimacsError::Syntax { .. } => None,
        }
    }
}

impl From<io::Error> for ParseDimacsError {
    fn from(e: io::Error) -> Self {
        ParseDimacsError::Io(e)
    }
}

fn syntax(line: usize, message: impl Into<String>) -> ParseDimacsError {
    ParseDimacsError::Syntax {
        line,
        message: message.into(),
    }
}

/// Parses DIMACS CNF from a reader.
///
/// Pass `&mut reader` if you need the reader back afterwards.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on I/O failure, a malformed header, a
/// non-integer token, a literal of `0`-adjacent malformation, or when the
/// file contains a clause before the `p cnf` header.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), cnf::ParseDimacsError> {
/// let text = "c example\np cnf 3 2\n1 2 0\n-2 3 0\n";
/// let f = cnf::parse_dimacs(text.as_bytes())?;
/// assert_eq!(f.num_vars(), 3);
/// assert_eq!(f.num_clauses(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_dimacs<R: BufRead>(reader: R) -> Result<Cnf, ParseDimacsError> {
    let mut formula: Option<Cnf> = None;
    let mut declared_clauses = 0usize;
    let mut current = Clause::new();

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') || trimmed.starts_with('%') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('p') {
            if formula.is_some() {
                return Err(syntax(line_no, "duplicate problem header"));
            }
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("cnf") => {}
                other => {
                    return Err(syntax(
                        line_no,
                        format!("expected `p cnf`, found `p {}`", other.unwrap_or("")),
                    ))
                }
            }
            let vars: u32 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| syntax(line_no, "missing or invalid variable count"))?;
            declared_clauses = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| syntax(line_no, "missing or invalid clause count"))?;
            if parts.next().is_some() {
                return Err(syntax(line_no, "trailing tokens after header"));
            }
            formula = Some(Cnf::new(vars));
            continue;
        }
        let f = formula
            .as_mut()
            .ok_or_else(|| syntax(line_no, "clause data before `p cnf` header"))?;
        for token in trimmed.split_whitespace() {
            let value: i64 = token
                .parse()
                .map_err(|_| syntax(line_no, format!("invalid literal token `{token}`")))?;
            if value == 0 {
                f.add_clause(std::mem::take(&mut current));
            } else {
                if value.unsigned_abs() > u32::MAX as u64 / 2 {
                    return Err(syntax(line_no, format!("literal `{token}` out of range")));
                }
                current.push(Lit::from_dimacs(value as i32));
            }
        }
    }

    let mut f = formula.unwrap_or_default();
    if !current.is_empty() {
        f.add_clause(current);
    }
    // The header clause count is advisory in practice (SATLIB files often
    // disagree with it), so a mismatch is deliberately not an error.
    let _ = declared_clauses;
    Ok(f)
}

/// Parses DIMACS CNF from an in-memory string.
///
/// # Errors
///
/// See [`parse_dimacs`].
pub fn parse_dimacs_str(text: &str) -> Result<Cnf, ParseDimacsError> {
    parse_dimacs(text.as_bytes())
}

/// Writes a formula in DIMACS CNF format.
///
/// Pass `&mut writer` if you need the writer back afterwards.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut f = cnf::Cnf::new(2);
/// f.add_dimacs(&[1, -2]);
/// let mut out = Vec::new();
/// cnf::write_dimacs(&mut out, &f)?;
/// assert_eq!(String::from_utf8(out)?, "p cnf 2 1\n1 -2 0\n");
/// # Ok(())
/// # }
/// ```
pub fn write_dimacs<W: Write>(mut writer: W, formula: &Cnf) -> io::Result<()> {
    writeln!(
        writer,
        "p cnf {} {}",
        formula.num_vars(),
        formula.num_clauses()
    )?;
    for clause in formula.clauses() {
        for lit in clause.lits() {
            write!(writer, "{} ", lit.to_dimacs())?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

/// Renders a formula to a DIMACS string.
pub fn to_dimacs_string(formula: &Cnf) -> String {
    let mut out = Vec::new();
    write_dimacs(&mut out, formula).expect("writing to Vec cannot fail");
    String::from_utf8(out).expect("DIMACS output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let f = parse_dimacs_str("p cnf 3 2\n1 2 0\n-2 3 0\n").unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clauses()[1].lits()[0].to_dimacs(), -2);
    }

    #[test]
    fn parse_with_comments_and_blank_lines() {
        let f = parse_dimacs_str("c hi\n\np cnf 2 1\nc mid\n1 -2 0\n").unwrap();
        assert_eq!(f.num_clauses(), 1);
    }

    #[test]
    fn parse_multiline_clause_and_missing_terminator() {
        let f = parse_dimacs_str("p cnf 4 2\n1 2\n3 0 4\n-1").unwrap();
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clauses()[0].len(), 3);
        assert_eq!(f.clauses()[1].len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            parse_dimacs_str("1 2 0"),
            Err(ParseDimacsError::Syntax { line: 1, .. })
        ));
        assert!(parse_dimacs_str("p cnf x 2").is_err());
        assert!(parse_dimacs_str("p cnf 2 1\n1 zzz 0").is_err());
        assert!(parse_dimacs_str("p cnf 1 0\np cnf 1 0").is_err());
        assert!(parse_dimacs_str("p sat 3 2").is_err());
        assert!(parse_dimacs_str("p cnf 1 1 1").is_err());
    }

    #[test]
    fn roundtrip() {
        let mut f = Cnf::new(5);
        f.add_dimacs(&[1, -3, 5]);
        f.add_dimacs(&[-2]);
        f.add_dimacs(&[4, 2]);
        let text = to_dimacs_string(&f);
        let g = parse_dimacs_str(&text).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn error_display_mentions_line() {
        let err = parse_dimacs_str("p cnf 2 1\nbad 0").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn percent_suffix_tolerated() {
        // Some SATLIB files end with a `%` line followed by `0`.
        let f = parse_dimacs_str("p cnf 2 1\n1 2 0\n%\n0\n").unwrap();
        // trailing bare `0` adds one empty clause; SATLIB quirk — the parser
        // treats it as an empty clause, callers typically simplify.
        assert!(f.num_clauses() >= 1);
    }
}
