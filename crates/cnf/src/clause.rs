//! Clauses: disjunctions of literals.

use crate::Lit;
use std::fmt;

/// A clause — a disjunction of literals.
///
/// A `Clause` is a thin, owned wrapper over a literal vector that adds
/// clause-level queries ([`is_tautology`](Clause::is_tautology),
/// [`normalize`](Clause::normalize), evaluation).
///
/// # Examples
///
/// ```
/// use cnf::{Clause, Lit};
/// let c: Clause = [1, -2, 3].iter().copied().map(Lit::from_dimacs).collect();
/// assert_eq!(c.len(), 3);
/// assert!(!c.is_tautology());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates an empty clause (which is unsatisfiable).
    pub fn new() -> Self {
        Clause { lits: Vec::new() }
    }

    /// Creates a clause from the given literals.
    pub fn from_lits(lits: impl Into<Vec<Lit>>) -> Self {
        Clause { lits: lits.into() }
    }

    /// Creates a clause from signed DIMACS integers.
    ///
    /// # Panics
    ///
    /// Panics if any integer is `0`.
    pub fn from_dimacs(lits: &[i32]) -> Self {
        Clause {
            lits: lits.iter().map(|&d| Lit::from_dimacs(d)).collect(),
        }
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether the clause has no literals (the trivially false clause).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Whether the clause contains exactly one literal.
    pub fn is_unit(&self) -> bool {
        self.lits.len() == 1
    }

    /// The literals of this clause.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Mutable access to the literals.
    pub fn lits_mut(&mut self) -> &mut Vec<Lit> {
        &mut self.lits
    }

    /// Consumes the clause, returning its literal vector.
    pub fn into_lits(self) -> Vec<Lit> {
        self.lits
    }

    /// Appends a literal.
    pub fn push(&mut self, lit: Lit) {
        self.lits.push(lit);
    }

    /// Whether the clause contains the literal.
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.contains(&lit)
    }

    /// Whether the clause contains both a literal and its negation
    /// (and is therefore always satisfied).
    ///
    /// ```
    /// use cnf::Clause;
    /// assert!(Clause::from_dimacs(&[1, -1, 2]).is_tautology());
    /// assert!(!Clause::from_dimacs(&[1, 2]).is_tautology());
    /// ```
    pub fn is_tautology(&self) -> bool {
        // Clauses are short; quadratic scan avoids allocation.
        if self.lits.len() > 16 {
            let mut sorted = self.lits.clone();
            sorted.sort_unstable();
            return sorted.windows(2).any(|w| w[0] == !w[1]);
        }
        self.lits
            .iter()
            .enumerate()
            .any(|(i, &a)| self.lits[i + 1..].contains(&!a))
    }

    /// Sorts literals, removes duplicates, and reports whether the clause is
    /// a tautology (in which case its content is unspecified and it should
    /// be discarded).
    pub fn normalize(&mut self) -> bool {
        self.lits.sort_unstable();
        self.lits.dedup();
        self.lits.windows(2).any(|w| w[0] == !w[1])
    }

    /// Evaluates the clause under a total or partial assignment.
    ///
    /// `value_of` maps a variable index to `Some(bool)` when assigned.
    /// Returns `Some(true)` if any literal is satisfied, `Some(false)` if
    /// all literals are falsified, and `None` otherwise (undetermined).
    pub fn eval_partial(&self, mut value_of: impl FnMut(u32) -> Option<bool>) -> Option<bool> {
        let mut all_false = true;
        for &l in &self.lits {
            match value_of(l.var().index()) {
                Some(v) if l.eval(v) => return Some(true),
                Some(_) => {}
                None => all_false = false,
            }
        }
        if all_false {
            Some(false)
        } else {
            None
        }
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Clause {
            lits: iter.into_iter().collect(),
        }
    }
}

impl Extend<Lit> for Clause {
    fn extend<I: IntoIterator<Item = Lit>>(&mut self, iter: I) {
        self.lits.extend(iter);
    }
}

impl From<Vec<Lit>> for Clause {
    fn from(lits: Vec<Lit>) -> Self {
        Clause { lits }
    }
}

impl AsRef<[Lit]> for Clause {
    fn as_ref(&self) -> &[Lit] {
        &self.lits
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl IntoIterator for Clause {
    type Item = Lit;
    type IntoIter = std::vec::IntoIter<Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.into_iter()
    }
}

impl std::ops::Index<usize> for Clause {
    type Output = Lit;

    fn index(&self, i: usize) -> &Lit {
        &self.lits[i]
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.lits.iter()).finish()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "⊥");
        }
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tautology_detection() {
        assert!(Clause::from_dimacs(&[1, -1]).is_tautology());
        assert!(Clause::from_dimacs(&[2, 3, -2]).is_tautology());
        assert!(!Clause::from_dimacs(&[1, 2, 3]).is_tautology());
        assert!(!Clause::new().is_tautology());
        // long clause path
        let mut lits: Vec<i32> = (1..=20).collect();
        lits.push(-10);
        assert!(Clause::from_dimacs(&lits).is_tautology());
    }

    #[test]
    fn normalize_dedups_and_sorts() {
        let mut c = Clause::from_dimacs(&[3, 1, 3, -2]);
        let taut = c.normalize();
        assert!(!taut);
        assert_eq!(c.len(), 3);
        let mut t = Clause::from_dimacs(&[1, -1]);
        assert!(t.normalize());
    }

    #[test]
    fn eval_partial_cases() {
        let c = Clause::from_dimacs(&[1, -2]);
        // x1=T satisfies
        assert_eq!(c.eval_partial(|v| (v == 0).then_some(true)), Some(true));
        // x1=F, x2=T falsifies
        assert_eq!(c.eval_partial(|v| Some(v == 1)), Some(false));
        // x1=F, x2 unassigned: undetermined
        assert_eq!(c.eval_partial(|v| (v == 0).then_some(false)), None);
        // empty clause is false
        assert_eq!(Clause::new().eval_partial(|_| None), Some(false));
    }

    #[test]
    fn display_empty_clause() {
        assert_eq!(Clause::new().to_string(), "⊥");
        assert_eq!(Clause::from_dimacs(&[1, -2]).to_string(), "x1 ∨ ¬x2");
    }
}
