//! Variables and literals.
//!
//! Internally a [`Lit`] packs a variable index and a sign into one `u32`
//! (`code = var_index << 1 | negated`), the classic MiniSat encoding. This
//! makes literals cheap to copy, hash and use as array indices.

use std::fmt;
use std::num::NonZeroI32;

/// A propositional variable, identified by a zero-based index.
///
/// # Examples
///
/// ```
/// use cnf::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_dimacs(), 4); // DIMACS variables are one-based
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Largest representable variable index.
    pub const MAX_INDEX: u32 = (u32::MAX >> 1) - 1;

    /// Creates a variable from its zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`Var::MAX_INDEX`].
    #[inline]
    pub fn new(index: u32) -> Self {
        // xtask: allow(hot-path-purity) documented constructor contract; hot-path callers rebuild vars from in-range indices
        assert!(index <= Self::MAX_INDEX, "variable index out of range");
        Var(index)
    }

    /// Zero-based index of this variable.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// One-based DIMACS name of this variable.
    #[inline]
    pub fn to_dimacs(self) -> i32 {
        self.0 as i32 + 1
    }

    /// Creates a variable from a one-based DIMACS name.
    ///
    /// # Panics
    ///
    /// Panics if `dimacs < 1`.
    #[inline]
    pub fn from_dimacs(dimacs: i32) -> Self {
        assert!(dimacs >= 1, "DIMACS variable names are positive");
        Var::new(dimacs as u32 - 1)
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, false)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, true)
    }

    /// The literal of this variable with the given sign.
    ///
    /// `negated == false` yields the positive literal.
    #[inline]
    pub fn lit(self, negated: bool) -> Lit {
        Lit::new(self, negated)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.to_dimacs())
    }
}

/// A literal: a variable or its negation.
///
/// # Examples
///
/// ```
/// use cnf::{Lit, Var};
/// let x = Var::new(0);
/// let a = x.positive();
/// assert_eq!(!a, x.negative());
/// assert_eq!(a.var(), x);
/// assert!(!a.is_negated());
/// assert_eq!(Lit::from_dimacs(-1), x.negative());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal over `var`, negated when `negated` is true.
    #[inline]
    pub fn new(var: Var, negated: bool) -> Self {
        Lit(var.0 << 1 | negated as u32)
    }

    /// Reconstructs a literal from its packed [`code`](Lit::code).
    #[inline]
    pub fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// The packed code (`var_index << 1 | negated`), usable as a dense index.
    #[inline]
    pub fn code(self) -> u32 {
        self.0
    }

    /// The variable underlying this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the negative literal of its variable.
    #[inline]
    pub fn is_negated(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether this is the positive literal of its variable.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Converts to the signed one-based DIMACS convention.
    #[inline]
    pub fn to_dimacs(self) -> i32 {
        let v = self.var().to_dimacs();
        if self.is_negated() {
            -v
        } else {
            v
        }
    }

    /// Creates a literal from the signed one-based DIMACS convention.
    ///
    /// # Panics
    ///
    /// Panics if `dimacs == 0`.
    #[inline]
    pub fn from_dimacs(dimacs: i32) -> Self {
        assert!(
            dimacs != 0,
            "0 is the DIMACS clause terminator, not a literal"
        );
        Lit::new(Var::from_dimacs(dimacs.abs()), dimacs < 0)
    }

    /// The polarity this literal requires its variable to take to be true.
    #[inline]
    pub fn polarity(self) -> bool {
        self.is_positive()
    }

    /// Evaluates the literal under an assignment of its variable.
    #[inline]
    pub fn eval(self, var_value: bool) -> bool {
        var_value != self.is_negated()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<NonZeroI32> for Lit {
    fn from(value: NonZeroI32) -> Self {
        Lit::from_dimacs(value.get())
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lit({})", self.to_dimacs())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "¬x{}", self.var().to_dimacs())
        } else {
            write!(f, "x{}", self.var().to_dimacs())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrips_dimacs() {
        for d in 1..100 {
            assert_eq!(Var::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    fn lit_roundtrips_dimacs() {
        for d in (-50..50).filter(|&d| d != 0) {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    fn negation_flips_sign_only() {
        let l = Lit::from_dimacs(7);
        assert_eq!((!l).to_dimacs(), -7);
        assert_eq!(!!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn code_is_dense() {
        let v = Var::new(5);
        assert_eq!(v.positive().code(), 10);
        assert_eq!(v.negative().code(), 11);
        assert_eq!(Lit::from_code(11), v.negative());
    }

    #[test]
    fn eval_respects_polarity() {
        let v = Var::new(0);
        assert!(v.positive().eval(true));
        assert!(!v.positive().eval(false));
        assert!(v.negative().eval(false));
        assert!(!v.negative().eval(true));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn from_dimacs_rejects_zero_var() {
        let _ = Var::from_dimacs(0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Lit::from_dimacs(3).to_string(), "x3");
        assert_eq!(Lit::from_dimacs(-3).to_string(), "¬x3");
        assert_eq!(Var::new(2).to_string(), "x3");
    }
}
