//! Core CNF data structures shared by the whole NeuroSelect workspace.
//!
//! This crate provides the vocabulary types for propositional satisfiability:
//! [`Var`] and [`Lit`] newtypes, [`Clause`] disjunctions, [`Cnf`] formulas,
//! and DIMACS parsing/printing.
//!
//! # Examples
//!
//! Build the formula from the paper's preliminaries,
//! `(x1 ∨ x2) ∧ (¬x2 ∨ x3)`, and check the satisfying assignment
//! `x1 = ⊤, x2 = ⊥, x3 = ⊤`:
//!
//! ```
//! use cnf::{Cnf, verify_model};
//!
//! let mut f = Cnf::new(3);
//! f.add_dimacs(&[1, 2]);
//! f.add_dimacs(&[-2, 3]);
//! assert!(verify_model(&f, &[true, false, true]).is_ok());
//! ```
//!
//! Round-trip through DIMACS:
//!
//! ```
//! # fn main() -> Result<(), cnf::ParseDimacsError> {
//! let f = cnf::parse_dimacs_str("p cnf 2 1\n1 -2 0\n")?;
//! assert_eq!(cnf::to_dimacs_string(&f), "p cnf 2 1\n1 -2 0\n");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clause;
mod dimacs;
mod formula;
mod lit;

pub use clause::Clause;
pub use dimacs::{
    parse_dimacs, parse_dimacs_str, to_dimacs_string, write_dimacs, ParseDimacsError,
};
pub use formula::{verify_model, Cnf, CnfStats};
pub use lit::{Lit, Var};
