//! CNF formulas: conjunctions of clauses.

use crate::{Clause, Var};
use std::fmt;

/// A formula in conjunctive normal form.
///
/// Tracks the number of variables explicitly so that formulas with unused
/// trailing variables (common in DIMACS files) round-trip faithfully.
///
/// # Examples
///
/// ```
/// use cnf::{Cnf, Clause};
/// let mut f = Cnf::new(3);
/// f.add_clause(Clause::from_dimacs(&[1, 2]));
/// f.add_clause(Clause::from_dimacs(&[-2, 3]));
/// assert_eq!(f.num_vars(), 3);
/// assert_eq!(f.num_clauses(), 2);
/// assert_eq!(f.eval(&[true, false, true]), Some(true));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty formula over `num_vars` variables.
    ///
    /// An empty formula (no clauses) is trivially satisfiable.
    pub fn new(num_vars: u32) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables (the DIMACS header count).
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences across all clauses.
    pub fn num_lits(&self) -> usize {
        self.clauses.iter().map(Clause::len).sum()
    }

    /// The clauses of this formula.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Adds a clause, growing the variable count if the clause mentions a
    /// variable beyond the current range.
    pub fn add_clause(&mut self, clause: Clause) {
        for &l in clause.lits() {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.clauses.push(clause);
    }

    /// Adds a clause given as signed DIMACS integers.
    ///
    /// # Panics
    ///
    /// Panics if any integer is `0`.
    pub fn add_dimacs(&mut self, lits: &[i32]) {
        self.add_clause(Clause::from_dimacs(lits));
    }

    /// Grows the variable range to at least `num_vars` and returns the
    /// formula's (possibly larger) current count.
    pub fn reserve_vars(&mut self, num_vars: u32) -> u32 {
        self.num_vars = self.num_vars.max(num_vars);
        self.num_vars
    }

    /// Allocates and returns a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Evaluates the formula under a total assignment
    /// (`assignment[v]` is the value of variable index `v`).
    ///
    /// Returns `None` if the assignment does not cover all variables
    /// mentioned by the clauses and the truth value is undetermined.
    pub fn eval(&self, assignment: &[bool]) -> Option<bool> {
        self.eval_partial(|v| assignment.get(v as usize).copied())
    }

    /// Evaluates under a partial assignment; see [`Clause::eval_partial`].
    pub fn eval_partial(&self, mut value_of: impl FnMut(u32) -> Option<bool>) -> Option<bool> {
        let mut undetermined = false;
        for c in &self.clauses {
            match c.eval_partial(&mut value_of) {
                Some(false) => return Some(false),
                None => undetermined = true,
                Some(true) => {}
            }
        }
        if undetermined {
            None
        } else {
            Some(true)
        }
    }

    /// Removes tautological clauses and normalizes the rest
    /// (sorted, deduplicated literals). Returns the number of clauses removed.
    pub fn simplify_trivial(&mut self) -> usize {
        let before = self.clauses.len();
        self.clauses.retain_mut(|c| !c.normalize());
        before - self.clauses.len()
    }

    /// Summary statistics used for dataset tables and graph sizing.
    pub fn stats(&self) -> CnfStats {
        let mut lens = [0usize; 4]; // unit, binary, ternary, longer
        for c in &self.clauses {
            match c.len() {
                0 | 1 => lens[0] += 1,
                2 => lens[1] += 1,
                3 => lens[2] += 1,
                _ => lens[3] += 1,
            }
        }
        CnfStats {
            num_vars: self.num_vars,
            num_clauses: self.clauses.len(),
            num_lits: self.num_lits(),
            unit_clauses: lens[0],
            binary_clauses: lens[1],
            ternary_clauses: lens[2],
            long_clauses: lens[3],
        }
    }

    /// Iterates over the clauses.
    pub fn iter(&self) -> std::slice::Iter<'_, Clause> {
        self.clauses.iter()
    }

    /// Appends all clauses of `other` (logical conjunction over a shared
    /// variable namespace).
    ///
    /// # Examples
    ///
    /// ```
    /// use cnf::Cnf;
    /// let mut a = Cnf::new(2);
    /// a.add_dimacs(&[1, 2]);
    /// let mut b = Cnf::new(3);
    /// b.add_dimacs(&[-3]);
    /// a.conjoin(&b);
    /// assert_eq!(a.num_vars(), 3);
    /// assert_eq!(a.num_clauses(), 2);
    /// ```
    pub fn conjoin(&mut self, other: &Cnf) {
        self.num_vars = self.num_vars.max(other.num_vars);
        self.clauses.extend(other.clauses.iter().cloned());
    }

    /// Renumbers variables densely, dropping unused ones. Returns the
    /// compacted formula and the mapping `old index → new index`
    /// (`None` for variables that occur in no clause).
    ///
    /// Useful after preprocessing eliminates variables: solvers size their
    /// internal arrays by `num_vars`, so gaps waste memory.
    ///
    /// # Examples
    ///
    /// ```
    /// use cnf::Cnf;
    /// let mut f = Cnf::new(10);
    /// f.add_dimacs(&[3, -7]);
    /// let (g, map) = f.compact();
    /// assert_eq!(g.num_vars(), 2);
    /// assert_eq!(map[2], Some(0)); // old x3 → new x1
    /// assert_eq!(map[6], Some(1)); // old x7 → new x2
    /// assert_eq!(map[0], None);
    /// ```
    pub fn compact(&self) -> (Cnf, Vec<Option<u32>>) {
        let mut map: Vec<Option<u32>> = vec![None; self.num_vars as usize];
        let mut next = 0u32;
        for c in &self.clauses {
            for &l in c.lits() {
                let slot = &mut map[l.var().index() as usize];
                if slot.is_none() {
                    *slot = Some(next);
                    next += 1;
                }
            }
        }
        let mut out = Cnf::new(next);
        for c in &self.clauses {
            out.clauses.push(
                c.lits()
                    .iter()
                    .map(|l| {
                        let new = map[l.var().index() as usize].expect("occurring var mapped");
                        Var::new(new).lit(l.is_negated())
                    })
                    .collect(),
            );
        }
        (out, map)
    }
}

impl FromIterator<Clause> for Cnf {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Self {
        let mut f = Cnf::new(0);
        for c in iter {
            f.add_clause(c);
        }
        f
    }
}

impl Extend<Clause> for Cnf {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        for c in iter {
            self.add_clause(c);
        }
    }
}

impl<'a> IntoIterator for &'a Cnf {
    type Item = &'a Clause;
    type IntoIter = std::slice::Iter<'a, Clause>;

    fn into_iter(self) -> Self::IntoIter {
        self.clauses.iter()
    }
}

impl fmt::Debug for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cnf({} vars, {} clauses)",
            self.num_vars,
            self.clauses.len()
        )
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

/// Size statistics of a [`Cnf`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CnfStats {
    /// Number of variables.
    pub num_vars: u32,
    /// Number of clauses.
    pub num_clauses: usize,
    /// Total literal occurrences.
    pub num_lits: usize,
    /// Clauses with at most one literal.
    pub unit_clauses: usize,
    /// Clauses with exactly two literals.
    pub binary_clauses: usize,
    /// Clauses with exactly three literals.
    pub ternary_clauses: usize,
    /// Clauses with more than three literals.
    pub long_clauses: usize,
}

impl CnfStats {
    /// Nodes in the bipartite variable–clause graph (`|V1| + |V2|`).
    pub fn graph_nodes(&self) -> usize {
        self.num_vars as usize + self.num_clauses
    }
}

/// Checks that `assignment` satisfies `formula`, returning the index of the
/// first falsified or undetermined clause on failure.
///
/// This is the model validation used by tests and the solver's debug
/// assertions.
///
/// # Examples
///
/// ```
/// use cnf::{verify_model, Cnf};
/// let mut f = Cnf::new(2);
/// f.add_dimacs(&[1, 2]);
/// assert_eq!(verify_model(&f, &[false, true]), Ok(()));
/// assert_eq!(verify_model(&f, &[false, false]), Err(0));
/// ```
pub fn verify_model(formula: &Cnf, assignment: &[bool]) -> Result<(), usize> {
    for (i, c) in formula.clauses().iter().enumerate() {
        if c.eval_partial(|v| assignment.get(v as usize).copied()) != Some(true) {
            return Err(i);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Cnf {
        // (x1 ∨ x2) ∧ (¬x2 ∨ x3), satisfiable: T,F,T
        let mut f = Cnf::new(3);
        f.add_dimacs(&[1, 2]);
        f.add_dimacs(&[-2, 3]);
        f
    }

    #[test]
    fn eval_paper_example() {
        let f = example();
        assert_eq!(f.eval(&[true, false, true]), Some(true));
        assert_eq!(f.eval(&[false, false, false]), Some(false));
    }

    #[test]
    fn add_clause_grows_vars() {
        let mut f = Cnf::new(0);
        f.add_dimacs(&[5, -9]);
        assert_eq!(f.num_vars(), 9);
    }

    #[test]
    fn empty_formula_is_true() {
        assert_eq!(Cnf::new(4).eval(&[]), Some(true));
        assert_eq!(Cnf::new(0).to_string(), "⊤");
    }

    #[test]
    fn partial_eval_undetermined() {
        let f = example();
        assert_eq!(f.eval_partial(|_| None), None);
    }

    #[test]
    fn simplify_removes_tautologies() {
        let mut f = Cnf::new(2);
        f.add_dimacs(&[1, -1]);
        f.add_dimacs(&[1, 2, 1]);
        assert_eq!(f.simplify_trivial(), 1);
        assert_eq!(f.num_clauses(), 1);
        assert_eq!(f.clauses()[0].len(), 2); // dedup applied
    }

    #[test]
    fn stats_counts_by_length() {
        let mut f = Cnf::new(4);
        f.add_dimacs(&[1]);
        f.add_dimacs(&[1, 2]);
        f.add_dimacs(&[1, 2, 3]);
        f.add_dimacs(&[1, 2, 3, 4]);
        let s = f.stats();
        assert_eq!(
            (
                s.unit_clauses,
                s.binary_clauses,
                s.ternary_clauses,
                s.long_clauses
            ),
            (1, 1, 1, 1)
        );
        assert_eq!(s.num_lits, 10);
        assert_eq!(s.graph_nodes(), 8);
    }

    #[test]
    fn verify_model_reports_first_bad_clause() {
        let f = example();
        assert_eq!(verify_model(&f, &[false, true, false]), Err(1));
        assert!(verify_model(&f, &[true, true, true]).is_ok());
        // missing assignment is a failure
        assert_eq!(verify_model(&f, &[true]), Err(1));
    }

    #[test]
    fn conjoin_is_logical_and() {
        let mut a = Cnf::new(2);
        a.add_dimacs(&[1, 2]);
        let mut b = Cnf::new(2);
        b.add_dimacs(&[-1]);
        a.conjoin(&b);
        assert_eq!(a.eval(&[true, false]), Some(false)); // violates ¬x1
        assert_eq!(a.eval(&[false, true]), Some(true));
    }

    #[test]
    fn compact_preserves_semantics_modulo_renaming() {
        let mut f = Cnf::new(8);
        f.add_dimacs(&[2, -5]);
        f.add_dimacs(&[5, 8]);
        let (g, map) = f.compact();
        assert_eq!(g.num_vars(), 3);
        // build the corresponding assignment and compare evaluations
        let assignment_old = [false, true, false, false, false, false, false, true];
        let mut assignment_new = vec![false; 3];
        for (old, new) in map.iter().enumerate() {
            if let Some(n) = new {
                assignment_new[*n as usize] = assignment_old[old];
            }
        }
        assert_eq!(f.eval(&assignment_old), g.eval(&assignment_new));
    }

    #[test]
    fn compact_of_empty_formula() {
        let f = Cnf::new(5);
        let (g, map) = f.compact();
        assert_eq!(g.num_vars(), 0);
        assert!(map.iter().all(Option::is_none));
    }

    #[test]
    fn new_var_is_fresh() {
        let mut f = example();
        let v = f.new_var();
        assert_eq!(v.index(), 3);
        assert_eq!(f.num_vars(), 4);
    }
}
