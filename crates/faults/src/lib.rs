//! Deterministic fault injection for the NeuroSelect stack.
//!
//! Production resilience claims ("a crashed worker degrades the race",
//! "a truncated proof write is a diagnostic, not an abort") are only
//! testable if the failures can be provoked on demand and reproducibly.
//! This crate provides that provocation layer: *named fault points*
//! compiled into the solver/pipeline crates behind their `faults`
//! feature, armed at runtime by a [`FaultPlan`].
//!
//! A plan is a semicolon-separated list of fault specs:
//!
//! ```text
//! worker-panic(worker=1,at=50);drat-truncate(after=64)
//! ```
//!
//! Each spec names a fault site and carries `key=value` parameters.
//! Parameters whose key also appears in the *context* supplied by the
//! instrumented code act as match conditions (`worker=1` fires only in
//! worker 1; the special key `at` fires once a context counter reaches
//! the threshold). Remaining parameters are configuration the site reads
//! after the fault fires (`after=64`: fail after 64 bytes). Every spec
//! fires a bounded number of times (`times=N`, default 1), so a plan is
//! a finite, deterministic schedule: the same plan against the same
//! seeded run injects the same faults at the same points.
//!
//! Plans are installed process-globally — fault points are reached deep
//! inside solver threads where no handle can be threaded through — via
//! [`install`], which returns an RAII [`FaultScope`] that also
//! serializes concurrent installers (so a multi-threaded chaos test
//! harness runs scenarios one at a time), or via [`install_from_env`]
//! for CLI binaries (`FAULT_PLAN` environment variable).
//!
//! # Examples
//!
//! ```
//! let plan: faults::FaultPlan = "worker-panic(worker=1,at=3)".parse().unwrap();
//! let scope = faults::install(plan);
//! // Worker 0 never matches.
//! assert!(faults::fire("worker-panic", &[("worker", 0), ("at", 9)]).is_none());
//! // Worker 1 fires once its counter reaches the threshold, exactly once.
//! assert!(faults::fire("worker-panic", &[("worker", 1), ("at", 2)]).is_none());
//! assert!(faults::fire("worker-panic", &[("worker", 1), ("at", 3)]).is_some());
//! assert!(faults::fire("worker-panic", &[("worker", 1), ("at", 4)]).is_none());
//! assert_eq!(scope.fired("worker-panic"), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Environment variable read by [`install_from_env`].
pub const ENV_VAR: &str = "FAULT_PLAN";

/// Canonical fault-site names used across the workspace. Sites live in
/// the crate that owns the failure, but the names are declared here so
/// plans, docs, and tests agree on spelling.
pub mod site {
    /// Panic inside a portfolio worker once its learned-clause counter
    /// reaches `at` (params: `worker`, `at`).
    pub const WORKER_PANIC: &str = "worker-panic";
    /// Corrupt a clause on its way into the shared pool (params:
    /// `worker`, `at` — the worker's export counter).
    pub const POOL_CORRUPT: &str = "pool-corrupt";
    /// Truncate the DRAT proof stream after `after` bytes.
    pub const DRAT_TRUNCATE: &str = "drat-truncate";
    /// Fail the DIMACS input stream after `after` bytes.
    pub const DIMACS_IO: &str = "dimacs-io";
    /// Fail the model-parameter input stream after `after` bytes.
    pub const MODEL_IO: &str = "model-io";
    /// Stall model inference for `delay_ms` milliseconds (exercises the
    /// pipeline's inference deadline).
    pub const INFERENCE_STALL: &str = "inference-stall";
    /// Panic inside model inference.
    pub const INFERENCE_PANIC: &str = "inference-panic";
    /// Panic inside the static-feature fallback heuristic (exercises the
    /// final default-policy link of the fallback chain).
    pub const HEURISTIC_PANIC: &str = "heuristic-panic";
    /// Corrupt an inprocessing round once the solver's round counter
    /// reaches `at`: the engine detects the corruption up front and must
    /// degrade to a clean skip (param: `at` — the round counter).
    pub const INPROCESS_CORRUPT: &str = "inprocess-corrupt";
    /// Stall an inprocessing round once the solver's round counter reaches
    /// `at`: the round's step budget collapses, forcing a mid-round abort
    /// that must leave the solver consistent (param: `at`).
    pub const INPROCESS_STALL: &str = "inprocess-stall";
    /// Panic inside a daemon session's solve once the daemon's solve
    /// counter reaches `at`; `session` narrows it to one session. The
    /// session must be quarantined (`crashed`), never the daemon
    /// (params: `session`, `at`).
    pub const SESSION_PANIC: &str = "session-panic";
    /// Stall a daemon worker for `delay_ms` milliseconds before it picks
    /// up its `at`-th job, backing the queue up so admission control and
    /// request deadlines fire (params: `at`, `delay_ms`).
    pub const SCHEDULER_STALL: &str = "scheduler-stall";
    /// Truncate a daemon connection's response stream after `after`
    /// bytes (via [`TruncatingWriter`]): the connection must die cleanly
    /// while the daemon and its sessions keep serving (param: `after`).
    pub const SOCKET_TRUNCATE: &str = "socket-truncate";
}

/// One armed fault: a site name, match/config parameters, and a shot
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Fault-site name this spec arms (see [`site`]).
    pub site: String,
    /// `key=value` parameters in plan order.
    pub params: Vec<(String, String)>,
    /// Maximum number of times this spec fires (default 1).
    pub times: u64,
}

impl FaultSpec {
    /// Looks up a parameter value by key.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A deterministic schedule of faults, parsed from a plan string.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The armed fault specs in plan order.
    pub specs: Vec<FaultSpec>,
}

/// Error produced when a plan string does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlanError {
    message: String,
}

impl fmt::Display for ParsePlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.message)
    }
}

impl Error for ParsePlanError {}

fn parse_error(message: impl Into<String>) -> ParsePlanError {
    ParsePlanError {
        message: message.into(),
    }
}

impl FromStr for FaultPlan {
    type Err = ParsePlanError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut specs = Vec::new();
        for raw in s.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            specs.push(parse_spec(raw)?);
        }
        Ok(FaultPlan { specs })
    }
}

fn parse_spec(raw: &str) -> Result<FaultSpec, ParsePlanError> {
    let (name, args) = match raw.find('(') {
        Some(open) => {
            let close = raw
                .rfind(')')
                .ok_or_else(|| parse_error(format!("unterminated '(' in `{raw}`")))?;
            if close + 1 != raw.len() {
                return Err(parse_error(format!("trailing text after ')' in `{raw}`")));
            }
            (&raw[..open], &raw[open + 1..close])
        }
        None => (raw, ""),
    };
    let name = name.trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(parse_error(format!("bad fault-site name in `{raw}`")));
    }
    let mut params = Vec::new();
    let mut times = 1u64;
    for pair in args.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| parse_error(format!("expected key=value, got `{pair}`")))?;
        let (key, value) = (key.trim(), value.trim());
        if key.is_empty() || value.is_empty() {
            return Err(parse_error(format!("empty key or value in `{pair}`")));
        }
        if key == "times" {
            times = value
                .parse()
                .map_err(|_| parse_error(format!("times must be an integer, got `{value}`")))?;
        } else {
            params.push((key.to_string(), value.to_string()));
        }
    }
    Ok(FaultSpec {
        site: name.to_string(),
        params,
        times,
    })
}

/// Configuration handed to a fault site when its spec fires.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    params: Vec<(String, String)>,
}

impl FaultConfig {
    /// Looks up a configuration parameter by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a numeric configuration parameter, with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

struct ArmedSpec {
    spec: FaultSpec,
    remaining: AtomicU64,
    fired: AtomicU64,
}

struct ArmedPlan {
    specs: Vec<ArmedSpec>,
}

impl ArmedPlan {
    fn arm(plan: FaultPlan) -> Self {
        ArmedPlan {
            specs: plan
                .specs
                .into_iter()
                .map(|spec| ArmedSpec {
                    remaining: AtomicU64::new(spec.times),
                    fired: AtomicU64::new(0),
                    spec,
                })
                .collect(),
        }
    }

    fn fire(&self, site: &str, ctx: &[(&str, u64)]) -> Option<FaultConfig> {
        for armed in &self.specs {
            if armed.spec.site != site || !matches(&armed.spec, ctx) {
                continue;
            }
            // Claim a shot; fetch_update never underflows past zero.
            let claimed = armed
                .remaining
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                .is_ok();
            if claimed {
                armed.fired.fetch_add(1, Ordering::AcqRel);
                return Some(FaultConfig {
                    params: armed.spec.params.clone(),
                });
            }
        }
        None
    }

    fn fired(&self, site: &str) -> u64 {
        self.specs
            .iter()
            .filter(|a| a.spec.site == site)
            .map(|a| a.fired.load(Ordering::Acquire))
            .sum()
    }
}

/// A spec matches when every parameter whose key the site also reports
/// as context holds: `at` is a reached-threshold condition, everything
/// else is equality. Parameters with no context counterpart are
/// configuration and never block a match.
fn matches(spec: &FaultSpec, ctx: &[(&str, u64)]) -> bool {
    for (key, value) in &spec.params {
        let Some((_, observed)) = ctx.iter().find(|(k, _)| k == key) else {
            continue;
        };
        let Ok(wanted) = value.parse::<u64>() else {
            return false;
        };
        let ok = if key == "at" {
            *observed >= wanted
        } else {
            *observed == wanted
        };
        if !ok {
            return false;
        }
    }
    true
}

fn active_plan() -> &'static Mutex<Option<Arc<ArmedPlan>>> {
    static ACTIVE: OnceLock<Mutex<Option<Arc<ArmedPlan>>>> = OnceLock::new();
    ACTIVE.get_or_init(|| Mutex::new(None))
}

fn install_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // A chaos scenario that fails its assertion poisons these locks; the
    // plan state itself is a plain swap, so recovery is always safe.
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// RAII guard for an installed [`FaultPlan`].
///
/// While alive, the plan is the process-global fault schedule; dropping
/// the scope restores whatever was installed before. The scope also
/// holds a global serialization lock so concurrently-running tests
/// install plans one at a time instead of clobbering each other.
pub struct FaultScope {
    plan: Arc<ArmedPlan>,
    previous: Option<Arc<ArmedPlan>>,
    _serial: MutexGuard<'static, ()>,
}

impl FaultScope {
    /// How many times specs for `site` have fired under this scope.
    pub fn fired(&self, site: &str) -> u64 {
        self.plan.fired(site)
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        *lock_recovering(active_plan()) = self.previous.take();
    }
}

/// Installs `plan` as the process-global fault schedule and returns the
/// scope guard that keeps it armed.
pub fn install(plan: FaultPlan) -> FaultScope {
    let serial = match install_lock().lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let armed = Arc::new(ArmedPlan::arm(plan));
    // xtask: allow(lock-panic) install/uninstall are serialized by design; cold path, poisoning is recovered above
    let previous = lock_recovering(active_plan()).replace(Arc::clone(&armed));
    FaultScope {
        plan: armed,
        previous,
        _serial: serial,
    }
}

/// Installs the plan named by the `FAULT_PLAN` environment variable for
/// the rest of the process (no scope: CLI binaries arm once at startup).
///
/// Returns `Ok(true)` if a plan was installed, `Ok(false)` if the
/// variable is unset or empty.
pub fn install_from_env() -> Result<bool, ParsePlanError> {
    let Ok(raw) = std::env::var(ENV_VAR) else {
        return Ok(false);
    };
    if raw.trim().is_empty() {
        return Ok(false);
    }
    install_global(raw.parse()?);
    Ok(true)
}

/// Installs `plan` for the rest of the process, bypassing scoping.
pub fn install_global(plan: FaultPlan) {
    *lock_recovering(active_plan()) = Some(Arc::new(ArmedPlan::arm(plan)));
}

/// Checks the active plan for a spec of `site` matching `ctx`; if one
/// matches with shots remaining, consumes a shot and returns its
/// configuration. Returns `None` when no plan is installed — the common
/// case, a single uncontended mutex probe.
pub fn fire(site: &str, ctx: &[(&str, u64)]) -> Option<FaultConfig> {
    let plan = lock_recovering(active_plan()).clone()?;
    plan.fire(site, ctx)
}

/// An [`io::Read`] adapter that yields an injected I/O error after a
/// byte budget is spent — a mid-stream disk/network failure in a box.
#[derive(Debug)]
pub struct FailingReader<R> {
    inner: R,
    remaining: u64,
}

impl<R> FailingReader<R> {
    /// Wraps `inner`, allowing `budget` bytes through before failing.
    pub fn new(inner: R, budget: u64) -> Self {
        FailingReader {
            inner,
            remaining: budget,
        }
    }
}

impl<R: Read> Read for FailingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected I/O fault: read failed"));
        }
        let cap = buf.len().min(self.remaining as usize);
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n as u64;
        Ok(n)
    }
}

/// An [`io::Write`] adapter that accepts a byte budget and then fails
/// every subsequent write — a full disk or severed pipe in a box.
#[derive(Debug)]
pub struct TruncatingWriter<W> {
    inner: W,
    remaining: u64,
}

impl<W> TruncatingWriter<W> {
    /// Wraps `inner`, allowing `budget` bytes through before failing.
    pub fn new(inner: W, budget: u64) -> Self {
        TruncatingWriter {
            inner,
            remaining: budget,
        }
    }
}

impl<W: Write> Write for TruncatingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected I/O fault: write failed"));
        }
        let cap = buf.len().min(self.remaining as usize);
        let n = self.inner.write(&buf[..cap])?;
        self.remaining -= n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_round_trips_sites_params_and_times() {
        let plan: FaultPlan = "worker-panic(worker=1,at=50,times=3); drat-truncate(after=64)"
            .parse()
            .expect("plan parses");
        assert_eq!(plan.specs.len(), 2);
        assert_eq!(plan.specs[0].site, "worker-panic");
        assert_eq!(plan.specs[0].param("worker"), Some("1"));
        assert_eq!(plan.specs[0].times, 3);
        assert_eq!(plan.specs[1].site, "drat-truncate");
        assert_eq!(plan.specs[1].param("after"), Some("64"));
        assert_eq!(plan.specs[1].times, 1);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "panic(",
            "x(a)",
            "x(=1)",
            "x(a=)",
            "(a=1)",
            "x(times=many)",
            "x(a=1)b",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn fire_honors_match_conditions_and_shot_budget() {
        let scope = install("pool-corrupt(worker=2,at=10,times=2)".parse().unwrap());
        assert!(fire("pool-corrupt", &[("worker", 1), ("at", 99)]).is_none());
        assert!(fire("pool-corrupt", &[("worker", 2), ("at", 9)]).is_none());
        assert!(fire("pool-corrupt", &[("worker", 2), ("at", 10)]).is_some());
        assert!(fire("pool-corrupt", &[("worker", 2), ("at", 11)]).is_some());
        assert!(fire("pool-corrupt", &[("worker", 2), ("at", 12)]).is_none());
        assert_eq!(scope.fired("pool-corrupt"), 2);
        assert_eq!(scope.fired("worker-panic"), 0);
    }

    #[test]
    fn config_params_do_not_block_matching() {
        let _scope = install("drat-truncate(after=64)".parse().unwrap());
        let cfg = fire("drat-truncate", &[]).expect("fires without context");
        assert_eq!(cfg.get_u64("after", 0), 64);
        assert_eq!(cfg.get_u64("missing", 7), 7);
    }

    #[test]
    fn dropping_scope_disarms_and_restores() {
        {
            let outer = install("dimacs-io(after=1)".parse().unwrap());
            assert!(fire("dimacs-io", &[]).is_some());
            assert_eq!(outer.fired("dimacs-io"), 1);
        }
        assert!(fire("dimacs-io", &[]).is_none());
    }

    #[test]
    fn failing_reader_errors_after_budget() {
        let mut reader = FailingReader::new(Cursor::new(vec![7u8; 16]), 10);
        let mut buf = [0u8; 8];
        assert_eq!(reader.read(&mut buf).unwrap(), 8);
        assert_eq!(reader.read(&mut buf).unwrap(), 2);
        assert!(reader.read(&mut buf).is_err());
    }

    #[test]
    fn truncating_writer_errors_after_budget() {
        let mut sink = Vec::new();
        {
            let mut writer = TruncatingWriter::new(&mut sink, 5);
            assert_eq!(writer.write(b"abc").unwrap(), 3);
            assert_eq!(writer.write(b"defg").unwrap(), 2);
            assert!(writer.write(b"h").is_err());
        }
        assert_eq!(sink, b"abcde");
    }
}
