//! Integration tests driving the `rsat` binary end-to-end: DIMACS in,
//! SAT-competition exit codes and `c`-comment stats out, and the
//! `--stats-json` JSONL telemetry stream.

use std::path::PathBuf;
use std::process::{Command, Output};
use telemetry::json::{FromJson, Json};
use telemetry::{Event, SCHEMA_VERSION};

/// Pigeonhole PHP(holes+1, holes) in DIMACS — small and always UNSAT.
fn php_dimacs(holes: usize) -> String {
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| p * holes + h + 1;
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push(
            (0..holes)
                .map(|h| var(p, h).to_string())
                .collect::<Vec<_>>()
                .join(" ")
                + " 0",
        );
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                clauses.push(format!("-{} -{} 0", var(p1, h), var(p2, h)));
            }
        }
    }
    format!(
        "p cnf {} {}\n{}\n",
        pigeons * holes,
        clauses.len(),
        clauses.join("\n")
    )
}

/// Writes `dimacs` to a unique temp file and returns its path.
fn temp_cnf(name: &str, dimacs: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("rsat-cli-{}-{name}.cnf", std::process::id()));
    std::fs::write(&path, dimacs).expect("write temp cnf");
    path
}

fn run_rsat(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rsat"))
        .args(args)
        .output()
        .expect("spawn rsat")
}

#[test]
fn unsat_instance_exits_20_with_stats_block() {
    let cnf = temp_cnf("unsat", &php_dimacs(4));
    let out = run_rsat(&[cnf.to_str().unwrap()]);
    std::fs::remove_file(&cnf).ok();
    assert_eq!(out.status.code(), Some(20));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("s UNSATISFIABLE"), "stdout: {stdout}");
    // the c-comment stats block is on by default
    assert!(stdout.contains("c decisions "), "stdout: {stdout}");
}

#[test]
fn sat_instance_exits_10_with_model() {
    let cnf = temp_cnf("sat", "p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n");
    let out = run_rsat(&[cnf.to_str().unwrap()]);
    std::fs::remove_file(&cnf).ok();
    assert_eq!(out.status.code(), Some(10));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("s SATISFIABLE"), "stdout: {stdout}");
    assert!(
        stdout.lines().any(|l| l.starts_with("v ")),
        "stdout: {stdout}"
    );
}

#[test]
fn no_stats_silences_the_comment_block() {
    let cnf = temp_cnf("nostats", &php_dimacs(3));
    let out = run_rsat(&[cnf.to_str().unwrap(), "--no-stats"]);
    std::fs::remove_file(&cnf).ok();
    assert_eq!(out.status.code(), Some(20));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(!stdout.contains("c decisions "), "stdout: {stdout}");
}

#[test]
fn stats_json_streams_schema_versioned_events() {
    let cnf = temp_cnf("jsonl", &php_dimacs(4));
    let jsonl = std::env::temp_dir().join(format!("rsat-cli-{}.jsonl", std::process::id()));
    let out = run_rsat(&[
        cnf.to_str().unwrap(),
        "--stats-json",
        jsonl.to_str().unwrap(),
    ]);
    let stream = std::fs::read_to_string(&jsonl).expect("read jsonl");
    std::fs::remove_file(&cnf).ok();
    std::fs::remove_file(&jsonl).ok();
    assert_eq!(out.status.code(), Some(20));

    let events: Vec<Event> = stream
        .lines()
        .map(|line| {
            let value = Json::parse(line).expect("each line is one JSON object");
            assert_eq!(
                value.get("schema_version").and_then(Json::as_u64),
                Some(u64::from(SCHEMA_VERSION))
            );
            Event::from_json(&value).expect("each line is a known event")
        })
        .collect();
    assert!(events.len() >= 2, "expected at least start+end events");
    assert!(matches!(&events[0], Event::SolveStart { instance_id, .. }
        if instance_id.ends_with(".cnf")));
    match events.last().unwrap() {
        Event::SolveEnd { record } => {
            assert_eq!(record.result, "UNSAT");
            assert_eq!(record.policy, "default");
            assert!(record.solve_time_s >= 0.0);
        }
        other => panic!("last event should be solve_end, got {other:?}"),
    }
}
