//! Property tests: the CDCL solver must agree with brute-force enumeration
//! on small random formulas, under every deletion policy and under
//! aggressively frequent clause-database reductions.

use cnf::{verify_model, Cnf};
use proptest::prelude::*;
use sat_solver::{
    check_proof, preprocess, Branching, Checkpoint, PolicyKind, PreprocessConfig, Preprocessed,
    RestartStrategy, SolveResult, Solver, SolverConfig,
};

/// Brute-force satisfiability over up to 16 variables.
fn brute_force_sat(f: &Cnf) -> bool {
    let n = f.num_vars();
    assert!(n <= 16, "brute force limited to 16 variables");
    (0u32..1 << n).any(|bits| {
        let assignment: Vec<bool> = (0..n).map(|v| bits >> v & 1 == 1).collect();
        f.eval(&assignment) == Some(true)
    })
}

/// Strategy generating random CNFs with `vars` variables and clauses of
/// length 1–4.
fn arb_cnf(max_vars: u32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    (1..=max_vars).prop_flat_map(move |n| {
        let lit = (1..=n as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
        let clause = proptest::collection::vec(lit, 1..=4);
        proptest::collection::vec(clause, 1..=max_clauses).prop_map(move |clauses| {
            let mut f = Cnf::new(n);
            for c in clauses {
                f.add_dimacs(&c);
            }
            f
        })
    })
}

fn config_with_tiny_reduce(policy: PolicyKind) -> SolverConfig {
    SolverConfig {
        policy,
        // Reduce very aggressively so the deletion policy runs on small
        // instances; with tier1_glue = 0 even glue-2 clauses are at risk.
        tier1_glue: 0,
        reduce_init: 2,
        reduce_inc: 1,
        restart: RestartStrategy::Luby { scale: 4 },
        ..SolverConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_agrees_with_brute_force_default(f in arb_cnf(8, 30)) {
        let expected = brute_force_sat(&f);
        let mut solver = Solver::from_cnf(&f);
        match solver.solve() {
            SolveResult::Sat(model) => {
                prop_assert!(expected, "solver said SAT on UNSAT formula");
                prop_assert!(verify_model(&f, &model).is_ok(), "invalid model");
            }
            SolveResult::Unsat => prop_assert!(!expected, "solver said UNSAT on SAT formula"),
            SolveResult::Unknown => prop_assert!(false, "unlimited solve returned Unknown"),
        }
        if let Err(e) = solver.audit_invariants(Checkpoint::PostPropagate) {
            prop_assert!(false, "invariant audit after solving: {e}");
        }
    }

    #[test]
    fn solver_agrees_under_aggressive_reduction(f in arb_cnf(10, 45)) {
        let expected = brute_force_sat(&f);
        for policy in [PolicyKind::Default, PolicyKind::PropFreq] {
            let mut solver = Solver::new(&f, config_with_tiny_reduce(policy));
            match solver.solve() {
                SolveResult::Sat(model) => {
                    prop_assert!(expected);
                    prop_assert!(verify_model(&f, &model).is_ok());
                }
                SolveResult::Unsat => prop_assert!(!expected),
                SolveResult::Unknown => prop_assert!(false),
            }
            if let Err(e) = solver.audit_invariants(Checkpoint::PostReduce) {
                prop_assert!(false, "invariant audit after aggressive reduction: {e}");
            }
        }
    }

    #[test]
    fn unsat_proofs_check(f in arb_cnf(7, 40)) {
        let mut solver = Solver::new(&f, config_with_tiny_reduce(PolicyKind::Default));
        solver.enable_proof();
        if solver.solve().is_unsat() {
            prop_assert!(!brute_force_sat(&f));
            let proof = solver.take_proof().expect("proof enabled");
            prop_assert!(proof.claims_unsat());
            prop_assert_eq!(check_proof(&f, &proof), Ok(()));
        }
    }

    #[test]
    fn policies_agree_on_verdict(f in arb_cnf(9, 40)) {
        let mut a = Solver::new(&f, SolverConfig::with_policy(PolicyKind::Default));
        let mut b = Solver::new(&f, SolverConfig::with_policy(PolicyKind::PropFreqAlpha(0.5)));
        prop_assert_eq!(a.solve().is_sat(), b.solve().is_sat());
    }

    #[test]
    fn all_configurations_agree_with_brute_force(
        f in arb_cnf(8, 35),
        policy_idx in 0usize..4,
        restart_idx in 0usize..3,
        branching_idx in 0usize..3,
        fraction in prop_oneof![Just(0.25f64), Just(0.5), Just(1.0)],
        tier1 in 0u32..4,
    ) {
        let policy = [
            PolicyKind::Default,
            PolicyKind::PropFreq,
            PolicyKind::PropFreqAlpha(0.3),
            PolicyKind::Activity,
        ][policy_idx];
        let restart = [
            RestartStrategy::Luby { scale: 2 },
            RestartStrategy::GlueEma { margin: 1.1, min_interval: 5 },
            RestartStrategy::Never,
        ][restart_idx];
        let branching = [Branching::Evsids, Branching::Vmtf, Branching::Random][branching_idx];
        let config = SolverConfig {
            policy,
            restart,
            branching,
            reduce_fraction: fraction,
            tier1_glue: tier1,
            reduce_init: 3,
            reduce_inc: 2,
            seed: 42,
            ..SolverConfig::default()
        };
        let expected = brute_force_sat(&f);
        let mut solver = Solver::new(&f, config);
        match solver.solve() {
            SolveResult::Sat(model) => {
                prop_assert!(expected);
                prop_assert!(verify_model(&f, &model).is_ok());
            }
            SolveResult::Unsat => prop_assert!(!expected),
            SolveResult::Unknown => prop_assert!(false),
        }
        if let Err(e) = solver.audit_invariants(Checkpoint::PostPropagate) {
            prop_assert!(false, "invariant audit under {policy:?}/{restart:?}/{branching:?}: {e}");
        }
    }

    #[test]
    fn preprocessing_preserves_satisfiability(f in arb_cnf(10, 45)) {
        let expected = brute_force_sat(&f);
        match preprocess(&f, &PreprocessConfig::default()) {
            Preprocessed::Unsat => prop_assert!(!expected, "preprocess refuted a SAT formula"),
            Preprocessed::Simplified { cnf, reconstruction } => {
                let mut solver = Solver::from_cnf(&cnf);
                match solver.solve() {
                    SolveResult::Sat(mut model) => {
                        prop_assert!(expected, "SAT after preprocessing but UNSAT originally");
                        model.resize(f.num_vars() as usize, false);
                        reconstruction.extend_model(&mut model);
                        prop_assert!(
                            verify_model(&f, &model).is_ok(),
                            "reconstructed model must satisfy the original formula"
                        );
                    }
                    SolveResult::Unsat => prop_assert!(!expected),
                    SolveResult::Unknown => prop_assert!(false),
                }
            }
        }
    }

    #[test]
    fn preprocessing_with_tight_limits_is_sound(
        f in arb_cnf(8, 30),
        occ_limit in 1usize..6,
        growth in 0usize..3,
        rounds in 1usize..4,
    ) {
        let config = PreprocessConfig {
            bve_occurrence_limit: occ_limit,
            bve_growth: growth,
            max_rounds: rounds,
        };
        let expected = brute_force_sat(&f);
        match preprocess(&f, &config) {
            Preprocessed::Unsat => prop_assert!(!expected),
            Preprocessed::Simplified { cnf, reconstruction } => {
                let mut solver = Solver::from_cnf(&cnf);
                match solver.solve() {
                    SolveResult::Sat(mut model) => {
                        prop_assert!(expected);
                        model.resize(f.num_vars() as usize, false);
                        reconstruction.extend_model(&mut model);
                        prop_assert!(verify_model(&f, &model).is_ok());
                    }
                    SolveResult::Unsat => prop_assert!(!expected),
                    SolveResult::Unknown => prop_assert!(false),
                }
            }
        }
    }

    #[test]
    fn resume_after_budget_is_consistent(f in arb_cnf(8, 35)) {
        use sat_solver::Budget;
        let expected = brute_force_sat(&f);
        let mut solver = Solver::new(&f, config_with_tiny_reduce(PolicyKind::PropFreq));
        let mut result = solver.solve_with_budget(Budget::conflicts(1));
        let mut rounds = 0;
        while result.is_unknown() {
            rounds += 1;
            prop_assert!(rounds < 10_000, "no progress under budget resume");
            let next = solver.stats().conflicts + 1;
            result = solver.solve_with_budget(Budget::conflicts(next));
        }
        prop_assert_eq!(result.is_sat(), expected);
    }
}
