//! Live-metrics integration. Unlike `tests/trace.rs` this suite builds in
//! every feature combination: with `metrics` off it proves arming refuses
//! and recording is inert; with `metrics` on it proves that arming the
//! registry does not perturb the search (stats stay byte-identical) and
//! that the registry's counters agree with the solver's own statistics.

use sat_solver::{solve_portfolio, PortfolioConfig, Solver, SolverConfig, SolverStats};
use std::sync::Mutex;
use telemetry::json::ToJson;
use telemetry::metrics::{self, Counter};

/// The registry's armed flag is process-global; tests that arm it must
/// not overlap.
static METRICS_LOCK: Mutex<()> = Mutex::new(());

/// A pigeonhole formula (n pigeons, n-1 holes): small but conflict-rich,
/// so every counter and phase timer fires.
fn php(pigeons: u32, holes: u32) -> cnf::Cnf {
    let mut f = cnf::Cnf::new(0);
    let var = |p: u32, h: u32| (p * holes + h + 1) as i32;
    for p in 0..pigeons {
        f.add_dimacs(&(0..holes).map(|h| var(p, h)).collect::<Vec<_>>());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                f.add_dimacs(&[-var(p1, h), -var(p2, h)]);
            }
        }
    }
    f
}

fn busy_config() -> SolverConfig {
    SolverConfig {
        reduce_init: 5,
        reduce_inc: 5,
        ..SolverConfig::default()
    }
}

fn solve_sequential(armed: bool) -> (bool, SolverStats) {
    if armed {
        assert!(metrics::arm());
    }
    let f = php(6, 5);
    let mut solver = Solver::new(&f, busy_config());
    let result = solver.solve();
    if armed {
        metrics::disarm();
    }
    (result.is_unsat(), *solver.stats())
}

#[test]
fn feature_gate_matches_build() {
    assert_eq!(metrics::enabled(), cfg!(feature = "metrics"));
    if !metrics::enabled() {
        // Arming must refuse, and recording must stay inert.
        assert!(!metrics::arm());
        metrics::add(Counter::Propagations, 123);
        assert_eq!(metrics::snapshot().counter(Counter::Propagations), 0);
    }
}

#[test]
fn disarmed_solve_leaves_the_registry_empty() {
    let _guard = METRICS_LOCK.lock().unwrap();
    metrics::disarm();
    let before = metrics::snapshot();
    let (unsat, _) = solve_sequential(false);
    assert!(unsat);
    let after = metrics::snapshot();
    assert_eq!(
        before.counter(Counter::Conflicts),
        after.counter(Counter::Conflicts),
        "a disarmed solve must not touch the registry"
    );
}

#[test]
fn arming_metrics_does_not_perturb_the_search() {
    let _guard = METRICS_LOCK.lock().unwrap();
    let (bare_unsat, bare_stats) = solve_sequential(false);
    if !metrics::enabled() {
        // metrics-off build: the "armed" run is literally the same code
        // path, but pin the byte-identity claim anyway — it is the
        // acceptance contract for default builds.
        let (again_unsat, again_stats) = solve_sequential(false);
        assert!(bare_unsat && again_unsat);
        assert_eq!(
            bare_stats.to_json().to_string(),
            again_stats.to_json().to_string()
        );
        return;
    }
    let (armed_unsat, armed_stats) = solve_sequential(true);
    assert!(bare_unsat && armed_unsat);
    assert_eq!(
        bare_stats, armed_stats,
        "arming the metrics registry changed the solver's statistics"
    );
    assert_eq!(
        bare_stats.to_json().to_string(),
        armed_stats.to_json().to_string(),
        "serialized stats must be byte-identical with metrics armed"
    );
}

#[test]
fn registry_counters_agree_with_solver_stats() {
    let _guard = METRICS_LOCK.lock().unwrap();
    if !metrics::arm() {
        return; // metrics-off build: covered by feature_gate_matches_build
    }
    let f = php(6, 5);
    let mut solver = Solver::new(&f, busy_config());
    let result = solver.solve();
    let snap = metrics::snapshot();
    metrics::disarm();
    assert!(result.is_unsat());
    let stats = solver.stats();
    assert_eq!(snap.counter(Counter::Conflicts), stats.conflicts);
    assert_eq!(snap.counter(Counter::Decisions), stats.decisions);
    assert_eq!(snap.counter(Counter::LearnedClauses), stats.learned_clauses);
    assert_eq!(snap.counter(Counter::Restarts), stats.restarts);
    assert_eq!(snap.counter(Counter::Reductions), stats.reductions);
    assert_eq!(snap.counter(Counter::DeletedClauses), stats.deleted_clauses);
    // Propagations are deltas captured around the search loop's BCP call;
    // the solver also propagates outside the loop (e.g. while loading
    // units), so the registry may lag slightly — never lead.
    assert!(snap.counter(Counter::Propagations) <= stats.propagations);
    assert!(snap.counter(Counter::Propagations) > 0);
    // Phase meters fired, and their clock totals are plausible.
    assert!(snap.counter(Counter::PropagateCalls) > 0);
    // Every learned clause came out of exactly one analyze call (the final
    // level-0 conflict ends the search without analyzing).
    assert_eq!(snap.counter(Counter::AnalyzeCalls), stats.learned_clauses);
    assert!(snap.counter(Counter::PropagateNanos) > 0);
}

#[test]
fn portfolio_pool_traffic_is_metered() {
    let _guard = METRICS_LOCK.lock().unwrap();
    if !metrics::arm() {
        return;
    }
    let f = php(6, 5);
    let mut cfg = PortfolioConfig::new(4);
    cfg.instance_id = "php-6-5".to_string();
    let out = solve_portfolio(&f, &cfg).expect("portfolio verification failed");
    let snap = metrics::snapshot();
    metrics::disarm();
    assert!(out.result.is_unsat());
    assert_eq!(snap.counter(Counter::PoolExported), out.pool.exported);
    assert_eq!(snap.counter(Counter::PoolImported), out.pool.imported);
}
