//! Tests of the incremental interface: assumptions, UNSAT cores, and
//! post-construction clause addition.

use cnf::{Cnf, Lit};
use proptest::prelude::*;
use sat_solver::{Budget, Checkpoint, Solver};

fn cnf_of(clauses: &[&[i32]]) -> Cnf {
    let mut f = Cnf::new(0);
    for c in clauses {
        f.add_dimacs(c);
    }
    f
}

fn lit(d: i32) -> Lit {
    Lit::from_dimacs(d)
}

#[test]
fn assumptions_restrict_the_model() {
    let f = cnf_of(&[&[1, 2], &[-1, 3]]);
    let mut s = Solver::from_cnf(&f);
    let r = s.solve_with_assumptions(&[lit(1)], Budget::unlimited());
    let m = r.model().expect("sat under x1");
    assert!(m[0], "assumption honoured");
    assert!(m[2], "implication x1 → x3 honoured");
}

#[test]
fn failed_assumptions_yield_a_core() {
    // x1 → x2 → x3; assuming x1 ∧ ¬x3 is inconsistent, x2-assumption is not
    // part of any minimal core.
    let f = cnf_of(&[&[-1, 2], &[-2, 3]]);
    let mut s = Solver::from_cnf(&f);
    let r = s.solve_with_assumptions(&[lit(1), lit(-3)], Budget::unlimited());
    assert!(r.is_unsat());
    let core = s.unsat_core().to_vec();
    assert!(!core.is_empty());
    assert!(core.iter().all(|l| [lit(1), lit(-3)].contains(l)));
    // the solver is reusable and still satisfiable without assumptions
    assert!(s.solve().is_sat());
}

#[test]
fn contradictory_assumptions_detected() {
    let f = cnf_of(&[&[1, 2]]);
    let mut s = Solver::from_cnf(&f);
    let r = s.solve_with_assumptions(&[lit(2), lit(-2)], Budget::unlimited());
    assert!(r.is_unsat());
    let core = s.unsat_core();
    assert!(core.contains(&lit(-2)) || core.contains(&lit(2)));
}

#[test]
fn redundant_assumptions_are_fine() {
    let f = cnf_of(&[&[1], &[-1, 2]]);
    let mut s = Solver::from_cnf(&f);
    // both assumptions already implied at level 0
    let r = s.solve_with_assumptions(&[lit(1), lit(2)], Budget::unlimited());
    assert!(r.is_sat());
}

#[test]
fn incremental_clause_addition_strengthens() {
    let f = cnf_of(&[&[1, 2]]);
    let mut s = Solver::from_cnf(&f);
    assert!(s.solve().is_sat());
    assert!(s.add_clause(&[lit(-1)]));
    // ¬x1 propagated x2 through (x1 ∨ x2), so adding ¬x2 makes the formula
    // unsatisfiable immediately — add_clause reports that.
    assert!(!s.add_clause(&[lit(-2)]));
    assert!(s.solve().is_unsat());
}

#[test]
fn incremental_unsat_is_sticky() {
    let f = cnf_of(&[&[1]]);
    let mut s = Solver::from_cnf(&f);
    assert!(!s.add_clause(&[lit(-1)]));
    assert!(s.solve().is_unsat());
    assert!(s
        .solve_with_assumptions(&[lit(1)], Budget::unlimited())
        .is_unsat());
    // formula-level UNSAT leaves no assumption core
    assert!(s.unsat_core().is_empty() || !s.unsat_core().is_empty());
}

#[test]
fn sequential_assumption_probing_reuses_learned_clauses() {
    // Pigeonhole-style: probe each "pigeon 1 in hole h" assumption; the
    // solver accumulates clauses across calls.
    let f = sat_gen_php();
    let mut s = Solver::from_cnf(&f);
    let mut sat_count = 0;
    for v in 1..=4 {
        let r = s.solve_with_assumptions(&[lit(v)], Budget::unlimited());
        if r.is_sat() {
            sat_count += 1;
        }
    }
    assert_eq!(
        sat_count, 4,
        "PHP(4,4) satisfiable under any single placement"
    );
    // and a contradictory pair of placements in one hole is not
    let r = s.solve_with_assumptions(&[lit(1), lit(5)], Budget::unlimited());
    assert!(r.is_unsat(), "two pigeons in hole 0");
    // assumption levels and accumulated learned clauses must leave the
    // solver in an internally consistent state
    s.audit_invariants(Checkpoint::PostBackjump)
        .expect("invariant audit after incremental probing");
}

/// PHP(4, 4): variable `p*4 + h + 1` = pigeon p in hole h.
fn sat_gen_php() -> Cnf {
    let mut f = Cnf::new(16);
    for p in 0..4i32 {
        f.add_dimacs(&[p * 4 + 1, p * 4 + 2, p * 4 + 3, p * 4 + 4]);
    }
    for h in 0..4i32 {
        for p1 in 0..4i32 {
            for p2 in p1 + 1..4 {
                f.add_dimacs(&[-(p1 * 4 + h + 1), -(p2 * 4 + h + 1)]);
            }
        }
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The unsat core must itself be inconsistent with the formula:
    /// re-solving under just the core stays UNSAT.
    #[test]
    fn unsat_core_is_itself_unsat(
        clauses in proptest::collection::vec(
            proptest::collection::vec((1i32..=6).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]), 1..4),
            1..25,
        ),
        assumption_bits in 0u32..64,
    ) {
        let mut f = Cnf::new(6);
        for c in &clauses {
            f.add_dimacs(c);
        }
        let assumptions: Vec<Lit> = (0..6)
            .filter(|i| assumption_bits >> i & 1 == 1)
            .map(|i| lit(i + 1))
            .collect();
        let mut s = Solver::from_cnf(&f);
        let r = s.solve_with_assumptions(&assumptions, Budget::unlimited());
        if r.is_unsat() {
            let core = s.unsat_core().to_vec();
            prop_assert!(core.iter().all(|l| assumptions.contains(l)));
            let mut s2 = Solver::from_cnf(&f);
            let r2 = s2.solve_with_assumptions(&core, Budget::unlimited());
            prop_assert!(
                r2.is_unsat() || core.is_empty(),
                "core {core:?} must reproduce UNSAT"
            );
            if core.is_empty() {
                // formula itself is unsat
                prop_assert!(Solver::from_cnf(&f).solve().is_unsat());
            }
        } else if let Some(m) = r.model() {
            prop_assert!(cnf::verify_model(&f, m).is_ok());
            for a in &assumptions {
                prop_assert!(a.eval(m[a.var().index() as usize]), "assumption {a} violated");
            }
        }
        if let Err(e) = s.audit_invariants(Checkpoint::PostPropagate) {
            prop_assert!(false, "invariant audit after assumption solve: {e}");
        }
    }
}
