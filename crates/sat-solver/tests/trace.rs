//! Span-tracing integration (only built with `--features trace`):
//! a portfolio run must produce one trace lane per worker with valid
//! Chrome trace-event JSON, and arming the tracer must not perturb the
//! search — the solver's stats are identical with tracing on and off.

#![cfg(feature = "trace")]

use sat_solver::{solve_portfolio, PortfolioConfig, Solver, SolverConfig, SolverStats};
use std::sync::Mutex;
use telemetry::json::Json;
use telemetry::trace;

/// The tracer's armed flag is process-global; tests that arm it must not
/// overlap.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// A pigeonhole formula (n pigeons, n-1 holes): small but conflict-rich,
/// so propagate/analyze/minimize/reduce spans all fire.
fn php(pigeons: u32, holes: u32) -> cnf::Cnf {
    let mut f = cnf::Cnf::new(0);
    let var = |p: u32, h: u32| (p * holes + h + 1) as i32;
    for p in 0..pigeons {
        f.add_dimacs(&(0..holes).map(|h| var(p, h)).collect::<Vec<_>>());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                f.add_dimacs(&[-var(p1, h), -var(p2, h)]);
            }
        }
    }
    f
}

fn busy_config() -> SolverConfig {
    SolverConfig {
        reduce_init: 5,
        reduce_inc: 5,
        ..SolverConfig::default()
    }
}

fn solve_sequential(armed: bool) -> (bool, SolverStats) {
    if armed {
        trace::arm(0);
    }
    let f = php(6, 5);
    let mut solver = Solver::new(&f, busy_config());
    let result = solver.solve();
    if armed {
        trace::disarm();
        let _ = trace::drain();
    }
    (result.is_unsat(), *solver.stats())
}

#[test]
fn arming_the_tracer_does_not_perturb_the_search() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let (bare_unsat, bare_stats) = solve_sequential(false);
    let (traced_unsat, traced_stats) = solve_sequential(true);
    assert!(bare_unsat && traced_unsat);
    assert_eq!(
        bare_stats, traced_stats,
        "recording spans changed the solver's statistics"
    );
}

#[test]
fn portfolio_trace_has_one_lane_per_worker_and_round_trips_as_json() {
    let _guard = TRACE_LOCK.lock().unwrap();
    trace::arm(0);
    let f = php(6, 5);
    let workers = 4;
    let mut cfg = PortfolioConfig::new(workers);
    cfg.instance_id = "php-6-5".to_string();
    let out = solve_portfolio(&f, &cfg).expect("portfolio verification failed");
    assert!(out.result.is_unsat());
    trace::disarm();

    let logs = trace::drain();
    let worker_pids: Vec<u32> = logs.iter().map(|l| l.pid).filter(|&p| p > 0).collect();
    assert_eq!(
        worker_pids,
        (1..=workers as u32).collect::<Vec<_>>(),
        "expected one trace lane per worker"
    );
    for log in &logs {
        if log.pid > 0 {
            assert!(
                log.label.starts_with("worker "),
                "lane {} label {:?}",
                log.pid,
                log.label
            );
            assert!(!log.events.is_empty(), "lane {} recorded nothing", log.pid);
        }
    }

    // The export must survive a serialize→parse round trip and look like a
    // Chrome trace: a traceEvents array whose entries all carry ph/pid/ts.
    let doc = trace::chrome_trace(&logs);
    let text = doc.to_string();
    let parsed = Json::parse(&text).expect("exporter emitted invalid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut span_names = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
        assert!(ev.get("pid").and_then(Json::as_u64).is_some(), "pid field");
        match ph {
            "X" => {
                assert!(ev.get("dur").and_then(Json::as_f64).is_some());
                span_names.push(ev.get("name").and_then(Json::as_str).unwrap_or(""));
            }
            "i" | "M" => {}
            other => panic!("unexpected phase {other:?}"),
        }
        if ph != "M" {
            assert!(ev.get("ts").and_then(Json::as_f64).is_some(), "ts field");
        }
    }
    // A conflict-rich UNSAT instance exercises the solve and analyze spans
    // on every worker lane.
    assert!(span_names.contains(&"solve"), "{span_names:?}");
    assert!(span_names.contains(&"analyze"), "{span_names:?}");
}
