//! Metamorphic property tests: satisfiability is invariant under
//! satisfiability-preserving transformations of the formula.
//!
//! Four transformations are exercised — variable renaming (a bijection on
//! variable indices), literal polarity flips (negating every occurrence of
//! a chosen variable set), clause shuffling, and duplicate-clause
//! injection — against both deletion policies, against the solver with
//! in-search inprocessing (subsumption, bounded variable elimination,
//! vivification) rewriting the clause database mid-search, and against
//! the clause-sharing portfolio. The solver never sees the "expected" answer:
//! the oracle is the solver itself on the untransformed formula, which
//! makes these tests sensitive to heuristic-dependent soundness bugs
//! (e.g. a deletion policy or an imported clause corrupting the search)
//! that a fixed-oracle test could mask.

use cnf::{Clause, Cnf, Lit, Var};
use proptest::prelude::*;
use sat_solver::{
    solve_portfolio, PolicyKind, PortfolioConfig, RestartStrategy, SolveResult, Solver,
    SolverConfig,
};

/// Deterministic xorshift64* stream; proptest supplies only the seed so
/// shrinking stays meaningful.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Random CNFs with clauses of length 1–4 (same shape as the brute-force
/// suite, but here no brute-force oracle caps the variable count).
fn arb_cnf(max_vars: u32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    (2..=max_vars).prop_flat_map(move |n| {
        let lit = (1..=n as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
        let clause = proptest::collection::vec(lit, 1..=4);
        proptest::collection::vec(clause, 1..=max_clauses).prop_map(move |clauses| {
            let mut f = Cnf::new(n);
            for c in clauses {
                f.add_dimacs(&c);
            }
            f
        })
    })
}

/// A Fisher–Yates permutation of `0..n` drawn from `rng`.
fn permutation(n: usize, rng: &mut XorShift) -> Vec<u32> {
    let mut p: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        p.swap(i, rng.below(i + 1));
    }
    p
}

/// Renames variables through the bijection `perm` (old index → new index).
fn rename_vars(f: &Cnf, perm: &[u32]) -> Cnf {
    let mut out = Cnf::new(f.num_vars());
    for clause in f.iter() {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|l| Var::new(perm[l.var().index() as usize]).lit(l.is_negated()))
            .collect();
        out.add_clause(Clause::from_lits(lits));
    }
    out
}

/// Negates every occurrence of the variables selected by `flip`.
fn flip_polarities(f: &Cnf, flip: &[bool]) -> Cnf {
    let mut out = Cnf::new(f.num_vars());
    for clause in f.iter() {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|l| {
                if flip[l.var().index() as usize] {
                    !*l
                } else {
                    *l
                }
            })
            .collect();
        out.add_clause(Clause::from_lits(lits));
    }
    out
}

/// Reorders clauses by a random permutation.
fn shuffle_clauses(f: &Cnf, rng: &mut XorShift) -> Cnf {
    let order = permutation(f.num_clauses(), rng);
    let mut out = Cnf::new(f.num_vars());
    for &i in &order {
        out.add_clause(f.clauses()[i as usize].clone());
    }
    out
}

/// Re-adds a random selection of existing clauses (duplicates change
/// nothing semantically but shift clause ids, watch order, and activity).
fn inject_duplicates(f: &Cnf, rng: &mut XorShift) -> Cnf {
    let mut out = f.clone();
    let extra = 1 + rng.below(f.num_clauses());
    for _ in 0..extra {
        let i = rng.below(f.num_clauses());
        out.add_clause(f.clauses()[i].clone());
    }
    out
}

/// Aggressive-reduction config so deletion policies actually fire on
/// instances this small.
fn config_with_tiny_reduce(policy: PolicyKind) -> SolverConfig {
    SolverConfig {
        policy,
        tier1_glue: 0,
        reduce_init: 2,
        reduce_inc: 1,
        restart: RestartStrategy::Luby { scale: 4 },
        ..SolverConfig::default()
    }
}

/// Like [`config_with_tiny_reduce`] but with inprocessing rounds firing
/// at every restart, so subsumption/BVE/vivification all get a chance to
/// rewrite these small formulas mid-search.
fn config_with_inprocessing(policy: PolicyKind) -> SolverConfig {
    SolverConfig {
        inprocess: true,
        inprocess_interval: 1,
        ..config_with_tiny_reduce(policy)
    }
}

fn is_sat(f: &Cnf, policy: PolicyKind) -> bool {
    let mut s = Solver::new(f, config_with_tiny_reduce(policy));
    match s.solve() {
        SolveResult::Sat(model) => {
            assert!(cnf::verify_model(f, &model).is_ok(), "invalid model");
            true
        }
        SolveResult::Unsat => false,
        SolveResult::Unknown => panic!("unlimited solve returned Unknown"),
    }
}

/// Solves with inprocessing enabled; SAT models are verified against the
/// *original* formula, so BVE model reconstruction is on the hook too.
fn is_sat_inprocessed(f: &Cnf, policy: PolicyKind) -> bool {
    let mut s = Solver::new(f, config_with_inprocessing(policy));
    match s.solve() {
        SolveResult::Sat(model) => {
            assert!(
                cnf::verify_model(f, &model).is_ok(),
                "invalid model after inprocessing"
            );
            true
        }
        SolveResult::Unsat => false,
        SolveResult::Unknown => panic!("unlimited solve returned Unknown"),
    }
}

fn portfolio_is_sat(f: &Cnf, workers: usize) -> bool {
    let mut cfg = PortfolioConfig::new(workers);
    cfg.proof = true;
    cfg.verify = true; // model-check SAT, RUP-replay UNSAT before returning
    cfg.instance_id = String::from("metamorphic");
    #[cfg(feature = "checks")]
    {
        cfg.configure = Some(std::sync::Arc::new(|s: &mut Solver| {
            s.set_check_level(sat_solver::CheckLevel::Light);
        }));
    }
    let out = solve_portfolio(f, &cfg).expect("portfolio verification failed");
    match out.result {
        SolveResult::Sat(_) => true,
        SolveResult::Unsat => false,
        SolveResult::Unknown => panic!("unlimited portfolio returned Unknown"),
    }
}

/// All four transformations, tagged for failure messages.
fn transformed_variants(f: &Cnf, seed: u64) -> Vec<(&'static str, Cnf)> {
    let mut rng = XorShift::new(seed);
    let perm = permutation(f.num_vars() as usize, &mut rng);
    let flip: Vec<bool> = (0..f.num_vars()).map(|_| rng.next() & 1 == 1).collect();
    vec![
        ("rename", rename_vars(f, &perm)),
        ("flip", flip_polarities(f, &flip)),
        ("shuffle", shuffle_clauses(f, &mut rng)),
        ("duplicate", inject_duplicates(f, &mut rng)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn verdict_invariant_under_transformations_default(
        f in arb_cnf(20, 70),
        seed in any::<u64>(),
    ) {
        let expected = is_sat(&f, PolicyKind::Default);
        for (tag, g) in transformed_variants(&f, seed) {
            prop_assert_eq!(
                is_sat(&g, PolicyKind::Default),
                expected,
                "{} broke SAT-invariance under the default policy",
                tag
            );
        }
    }

    #[test]
    fn verdict_invariant_under_transformations_inprocessing(
        f in arb_cnf(20, 70),
        seed in any::<u64>(),
    ) {
        // Oracle is the plain solver; the transformed variants all run
        // with inprocessing rounds at every restart. Any unsound
        // subsumption, elimination, or vivification on a renamed/flipped/
        // shuffled/duplicated copy shows up as a verdict flip, and a bad
        // reconstruction shows up as an invalid model.
        let expected = is_sat(&f, PolicyKind::Default);
        prop_assert_eq!(
            is_sat_inprocessed(&f, PolicyKind::Default),
            expected,
            "inprocessing flipped the verdict on the untransformed formula"
        );
        for (tag, g) in transformed_variants(&f, seed) {
            prop_assert_eq!(
                is_sat_inprocessed(&g, PolicyKind::Default),
                expected,
                "{} broke SAT-invariance with inprocessing enabled",
                tag
            );
        }
    }

    #[test]
    fn verdict_invariant_under_transformations_propfreq(
        f in arb_cnf(20, 70),
        seed in any::<u64>(),
    ) {
        let expected = is_sat(&f, PolicyKind::PropFreq);
        for (tag, g) in transformed_variants(&f, seed) {
            prop_assert_eq!(
                is_sat(&g, PolicyKind::PropFreq),
                expected,
                "{} broke SAT-invariance under the prop-freq policy",
                tag
            );
        }
    }
}

proptest! {
    // The portfolio spawns threads per case, so fewer cases keep the suite
    // quick on single-core CI runners.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn verdict_invariant_under_transformations_portfolio(
        f in arb_cnf(16, 50),
        seed in any::<u64>(),
    ) {
        let expected = is_sat(&f, PolicyKind::Default);
        for (tag, g) in transformed_variants(&f, seed) {
            prop_assert_eq!(
                portfolio_is_sat(&g, 2),
                expected,
                "{} broke SAT-invariance under the 2-worker portfolio",
                tag
            );
        }
    }
}

#[test]
fn transformations_preserve_models_concretely() {
    // A deterministic sanity anchor independent of proptest: a satisfying
    // assignment maps through renaming and polarity flips as predicted.
    let mut f = Cnf::new(3);
    f.add_dimacs(&[1, 2]);
    f.add_dimacs(&[-1, 3]);
    f.add_dimacs(&[-2, -3]);
    let mut rng = XorShift::new(7);
    let perm = permutation(3, &mut rng);
    assert!(is_sat(&f, PolicyKind::Default));
    assert!(is_sat(&rename_vars(&f, &perm), PolicyKind::Default));
    assert!(is_sat(
        &flip_polarities(&f, &[true, false, true]),
        PolicyKind::Default
    ));
    // And an UNSAT core stays UNSAT through every transformation.
    let mut u = Cnf::new(2);
    u.add_dimacs(&[1, 2]);
    u.add_dimacs(&[1, -2]);
    u.add_dimacs(&[-1, 2]);
    u.add_dimacs(&[-1, -2]);
    for (tag, g) in transformed_variants(&u, 13) {
        assert!(!is_sat(&g, PolicyKind::Default), "{tag} flipped UNSAT");
        assert!(
            !is_sat_inprocessed(&g, PolicyKind::Default),
            "{tag} flipped UNSAT (inprocessing)"
        );
        assert!(!portfolio_is_sat(&g, 2), "{tag} flipped UNSAT (portfolio)");
    }
}
