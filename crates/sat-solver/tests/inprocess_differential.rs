//! Differential test wall for the inprocessing engine.
//!
//! The oracle is the solver itself with inprocessing disabled: for every
//! instance the verdicts must match, every SAT model must verify against
//! the *original* formula after BVE model reconstruction, and every UNSAT
//! run with inprocessing enabled must replay its DRAT proof — including
//! the delete lines emitted for subsumed, strengthened, vivified, and
//! eliminated clauses — through the RUP checker.
//!
//! Instance families mirror the cross-crate `solver_families` suite but
//! are generated locally (`sat-gen` dev-depends on this crate, so using
//! it here would create a dependency cycle): pigeonhole, random 3-SAT at
//! the phase transition, Tseitin parity cycles, and a small equivalence
//! miter. `arb_cnf` proptests cover the irregular shapes the fixed
//! families miss.

use cnf::{Clause, Cnf, Lit, Var};
use proptest::prelude::*;
use sat_solver::{
    check_proof, Checkpoint, InprocessStats, RestartStrategy, SolveResult, Solver, SolverConfig,
};

/// Inprocessing-heavy configuration: a round at every restart, frequent
/// restarts, and aggressive reduction so rounds interleave with the
/// deletion machinery they must stay consistent with.
fn inprocess_config() -> SolverConfig {
    SolverConfig {
        inprocess: true,
        inprocess_interval: 1,
        tier1_glue: 2,
        reduce_init: 8,
        reduce_inc: 4,
        restart: RestartStrategy::Luby { scale: 2 },
        ..SolverConfig::default()
    }
}

/// The baseline oracle: identical search parameters, inprocessing off.
fn baseline_config() -> SolverConfig {
    SolverConfig {
        inprocess: false,
        ..inprocess_config()
    }
}

/// Outcome of one inprocessing-enabled certified solve.
struct CertifiedRun {
    sat: bool,
    stats: InprocessStats,
    proof_deletes: usize,
}

/// Solves `f` with inprocessing enabled and full certification: final
/// invariant audit, model verification against the original formula on
/// SAT, DRAT replay (add *and* delete lines) on UNSAT.
fn solve_inprocessed_certified(f: &Cnf, label: &str) -> CertifiedRun {
    let mut s = Solver::new(f, inprocess_config());
    s.enable_proof();
    let r = s.solve();
    s.audit_invariants(Checkpoint::PostInprocess)
        .unwrap_or_else(|e| panic!("{label}: invariant audit failed: {e}"));
    let stats = s.inprocess_stats().expect("engine enabled");
    let mut proof_deletes = 0;
    let sat = match r {
        SolveResult::Sat(model) => {
            assert!(
                cnf::verify_model(f, &model).is_ok(),
                "{label}: model invalid after reconstruction"
            );
            true
        }
        SolveResult::Unsat => {
            let proof = s.take_proof().expect("proof enabled");
            assert!(proof.claims_unsat(), "{label}: proof must end empty");
            proof_deletes = proof
                .steps()
                .iter()
                .filter(|st| matches!(st, sat_solver::ProofStep::Delete(_)))
                .count();
            check_proof(f, &proof).unwrap_or_else(|e| panic!("{label}: DRAT replay failed: {e}"));
            false
        }
        SolveResult::Unknown => panic!("{label}: unlimited solve returned Unknown"),
    };
    CertifiedRun {
        sat,
        stats,
        proof_deletes,
    }
}

fn baseline_is_sat(f: &Cnf, label: &str) -> bool {
    let mut s = Solver::new(f, baseline_config());
    match s.solve() {
        SolveResult::Sat(model) => {
            assert!(
                cnf::verify_model(f, &model).is_ok(),
                "{label}: baseline model invalid"
            );
            true
        }
        SolveResult::Unsat => false,
        SolveResult::Unknown => panic!("{label}: unlimited solve returned Unknown"),
    }
}

// --- local instance families (no sat-gen: dependency cycle) -----------

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Pigeonhole principle: `pigeons` into `holes` (UNSAT when over-full).
fn php(pigeons: u32, holes: u32) -> Cnf {
    let var = |p: u32, h: u32| Var::new(p * holes + h);
    let mut f = Cnf::new(pigeons * holes);
    for p in 0..pigeons {
        f.add_clause((0..holes).map(|h| var(p, h).positive()).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                f.add_clause(Clause::from_lits(vec![
                    var(p1, h).negative(),
                    var(p2, h).negative(),
                ]));
            }
        }
    }
    f
}

/// Uniform random 3-SAT.
fn random_3sat(vars: u32, clauses: usize, seed: u64) -> Cnf {
    let mut rng = XorShift::new(seed);
    let mut f = Cnf::new(vars);
    for _ in 0..clauses {
        let mut lits = Vec::with_capacity(3);
        while lits.len() < 3 {
            let v = Var::new(rng.below(u64::from(vars)) as u32);
            if lits.iter().all(|l: &Lit| l.var() != v) {
                lits.push(v.lit(rng.next() & 1 == 0));
            }
        }
        f.add_clause(Clause::from_lits(lits));
    }
    f
}

/// Tseitin parity formula on a cycle of `n` vertices: edge variables
/// `e_i` with constraints `e_i ⊕ e_{i+1} = charge_i`. The formula is
/// satisfiable iff the total charge is even.
fn tseitin_cycle(n: u32, odd_charge: bool) -> Cnf {
    let mut f = Cnf::new(n);
    for i in 0..n {
        let a = Var::new(i);
        let b = Var::new((i + 1) % n);
        // First vertex optionally carries the odd charge: a ⊕ b = 1
        // (clauses a∨b, ¬a∨¬b); others demand equality (¬a∨b, a∨¬b).
        if i == 0 && odd_charge {
            f.add_clause(Clause::from_lits(vec![a.positive(), b.positive()]));
            f.add_clause(Clause::from_lits(vec![a.negative(), b.negative()]));
        } else {
            f.add_clause(Clause::from_lits(vec![a.negative(), b.positive()]));
            f.add_clause(Clause::from_lits(vec![a.positive(), b.negative()]));
        }
    }
    f
}

/// Tseitin XOR gate `o = a ⊕ b` (4 clauses).
fn xor_gate(f: &mut Cnf, o: Var, a: Var, b: Var) {
    f.add_clause(Clause::from_lits(vec![
        o.negative(),
        a.positive(),
        b.positive(),
    ]));
    f.add_clause(Clause::from_lits(vec![
        o.negative(),
        a.negative(),
        b.negative(),
    ]));
    f.add_clause(Clause::from_lits(vec![
        o.positive(),
        a.negative(),
        b.positive(),
    ]));
    f.add_clause(Clause::from_lits(vec![
        o.positive(),
        a.positive(),
        b.negative(),
    ]));
}

/// Equivalence miter of two XOR-tree associations over `2^depth` inputs:
/// `((x1⊕x2)⊕(x3⊕x4))…` against the left-fold `(((x1⊕x2)⊕x3)⊕x4)…`.
/// Associativity makes the circuits equivalent, so asserting the outputs
/// differ is UNSAT.
fn xor_miter(inputs: u32) -> Cnf {
    assert!(inputs >= 2);
    let mut f = Cnf::new(inputs);
    // Balanced tree.
    let mut layer: Vec<Var> = (0..inputs).map(Var::new).collect();
    while layer.len() > 1 {
        let mut up = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if let [a, b] = *pair {
                let o = f.new_var();
                xor_gate(&mut f, o, a, b);
                up.push(o);
            } else {
                up.push(pair[0]);
            }
        }
        layer = up;
    }
    let balanced = layer[0];
    // Left fold.
    let mut acc = Var::new(0);
    for i in 1..inputs {
        let o = f.new_var();
        xor_gate(&mut f, o, acc, Var::new(i));
        acc = o;
    }
    // Miter: outputs differ.
    let diff = f.new_var();
    xor_gate(&mut f, diff, balanced, acc);
    f.add_clause(Clause::from_lits(vec![diff.positive()]));
    f
}

fn family_instances() -> Vec<(String, Cnf)> {
    let mut out: Vec<(String, Cnf)> = vec![
        ("php-5-4".into(), php(5, 4)),
        ("php-4-4".into(), php(4, 4)),
        ("tseitin-cycle-12-odd".into(), tseitin_cycle(12, true)),
        ("tseitin-cycle-13-even".into(), tseitin_cycle(13, false)),
        ("xor-miter-4".into(), xor_miter(4)),
        ("xor-miter-6".into(), xor_miter(6)),
    ];
    for seed in 0..6u64 {
        // 3-SAT near the phase transition (ratio ~4.26), mixed verdicts.
        out.push((
            format!("3sat-30-128-s{seed}"),
            random_3sat(30, 128, 0x5eed + seed),
        ));
    }
    out
}

#[test]
fn family_verdicts_match_and_certify() {
    let mut unsat_with_deletes = 0usize;
    let mut total_work = InprocessStats::default();
    for (name, f) in family_instances() {
        let expected = baseline_is_sat(&f, &name);
        let run = solve_inprocessed_certified(&f, &name);
        assert_eq!(
            run.sat, expected,
            "{name}: inprocessing flipped the verdict"
        );
        if !run.sat && run.proof_deletes > 0 {
            unsat_with_deletes += 1;
        }
        total_work.rounds += run.stats.rounds;
        total_work.subsumed += run.stats.subsumed;
        total_work.strengthened += run.stats.strengthened;
        total_work.eliminated_vars += run.stats.eliminated_vars;
        total_work.vivified += run.stats.vivified;
    }
    // The wall only proves something if the engine actually worked: rounds
    // must have run, rewrites must have happened, and at least one UNSAT
    // proof must have replayed with inprocessing delete lines in it.
    assert!(total_work.rounds > 0, "no inprocessing rounds ran");
    assert!(
        total_work.subsumed + total_work.strengthened + total_work.eliminated_vars > 0,
        "inprocessing never rewrote a clause across the whole family suite"
    );
    assert!(
        unsat_with_deletes > 0,
        "no UNSAT proof exercised the delete-line replay path"
    );
}

#[test]
fn bve_reconstruction_spans_eliminated_chains() {
    // A long implication chain: middle variables are prime BVE targets
    // (two occurrences each), so SAT models must come out of the
    // reconstruction stack, not the trail.
    let mut f = Cnf::new(0);
    for i in 1..40i32 {
        f.add_dimacs(&[-i, i + 1]);
    }
    f.add_dimacs(&[1, 40]);
    let run = solve_inprocessed_certified(&f, "implication-chain");
    assert!(run.sat, "chain is satisfiable");
}

#[test]
fn incremental_solving_survives_inprocessing_rounds() {
    // Budgeted solve → resume must tolerate rounds having rewritten the
    // database between calls, and the final verdict must still certify.
    let f = php(6, 5);
    let mut s = Solver::new(&f, inprocess_config());
    s.enable_proof();
    let mut r = s.solve_with_budget(sat_solver::Budget::conflicts(20));
    let mut resumes = 0;
    while r.is_unknown() {
        resumes += 1;
        r = s.solve_with_budget(sat_solver::Budget::conflicts(s.stats().conflicts + 100));
    }
    assert!(r.is_unsat(), "php(6,5) is UNSAT");
    assert!(
        resumes > 0,
        "budget was chosen to force at least one resume"
    );
    let proof = s.take_proof().expect("proof enabled");
    assert_eq!(check_proof(&f, &proof), Ok(()));
}

/// Random CNFs with clauses of length 1–4 (the metamorphic suite's
/// shape): irregular occurrence profiles, units, and duplicate literals.
fn arb_cnf(max_vars: u32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    (2..=max_vars).prop_flat_map(move |n| {
        let lit = (1..=n as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
        let clause = proptest::collection::vec(lit, 1..=4);
        proptest::collection::vec(clause, 1..=max_clauses).prop_map(move |clauses| {
            let mut f = Cnf::new(n);
            for c in clauses {
                f.add_dimacs(&c);
            }
            f
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn arb_verdicts_match_with_certification(f in arb_cnf(20, 70)) {
        let expected = baseline_is_sat(&f, "arb-baseline");
        let run = solve_inprocessed_certified(&f, "arb-inprocessed");
        prop_assert_eq!(run.sat, expected, "inprocessing flipped the verdict");
    }

    #[test]
    fn arb_verdicts_match_under_interval_sweep(
        f in arb_cnf(14, 40),
        interval in 1u64..6,
    ) {
        // Round cadence must never affect the verdict, only the effort.
        let expected = baseline_is_sat(&f, "sweep-baseline");
        let cfg = SolverConfig {
            inprocess_interval: interval,
            ..inprocess_config()
        };
        let mut s = Solver::new(&f, cfg);
        let sat = match s.solve() {
            SolveResult::Sat(model) => {
                prop_assert!(
                    cnf::verify_model(&f, &model).is_ok(),
                    "invalid model at interval {}", interval
                );
                true
            }
            SolveResult::Unsat => false,
            SolveResult::Unknown => panic!("unlimited solve returned Unknown"),
        };
        prop_assert_eq!(sat, expected, "interval {} flipped the verdict", interval);
    }
}
