//! Regression wall for the frozen-variable contract of incremental
//! solving with inprocessing.
//!
//! The gap this pins down: bounded variable elimination used to skip
//! only the variables of the *current* call's assumptions, so a plain
//! `solve()` (or a call with different assumptions) could eliminate a
//! variable a later `solve_with_assumptions` call assumes — and the
//! later call would panic on the eliminated-variable contract.
//! Incremental sessions now freeze every assumption candidate
//! ([`Solver::freeze_var`]) and `solve_with_assumptions` freezes its
//! assumption set automatically, so a variable assumed once stays
//! assumable forever.

use cnf::{Clause, Cnf, Lit, Var};
use sat_solver::{run_isolated, Budget, RestartStrategy, SolveResult, Solver, SolverConfig};

/// Inprocessing-heavy configuration (mirrors the differential suite): a
/// round at every restart with frequent restarts, so BVE gets many
/// chances to pick a pivot during one solve.
fn inprocess_config() -> SolverConfig {
    SolverConfig {
        inprocess: true,
        inprocess_interval: 1,
        tier1_glue: 2,
        reduce_init: 8,
        reduce_inc: 4,
        restart: RestartStrategy::Luby { scale: 2 },
        ..SolverConfig::default()
    }
}

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Random 3-SAT near the phase transition — hard enough to restart many
/// times (driving inprocessing rounds), sparse enough that BVE finds
/// low-occurrence pivots.
fn random_3sat(num_vars: u32, num_clauses: u32, seed: u64) -> Cnf {
    let mut rng = XorShift::new(seed.wrapping_mul(2).wrapping_add(1));
    let mut f = Cnf::new(num_vars);
    for _ in 0..num_clauses {
        let mut lits = Vec::with_capacity(3);
        while lits.len() < 3 {
            let v = Var::new(rng.below(num_vars as u64) as u32);
            if lits.iter().any(|l: &Lit| l.var() == v) {
                continue;
            }
            let lit = if rng.below(2) == 0 {
                v.positive()
            } else {
                v.negative()
            };
            lits.push(lit);
        }
        f.add_clause(Clause::from_lits(lits));
    }
    f
}

/// Some variable eliminated by the most recent solve, probed through the
/// public non-panicking query.
fn first_eliminated_var(s: &Solver) -> Option<Var> {
    (0..s.num_vars())
        .map(Var::new)
        .find(|&v| s.find_eliminated(&[v.positive()]).is_some())
}

/// An instance plus a variable that BVE provably eliminates when nothing
/// is frozen. Panics if no seed provokes an elimination — that would
/// mean this wall lost its trigger and must be re-tuned.
fn instance_with_elimination() -> (Cnf, Var) {
    for seed in 0..64 {
        let f = random_3sat(120, 420, seed);
        let mut s = Solver::new(&f, inprocess_config());
        let _ = s.solve();
        if let Some(v) = first_eliminated_var(&s) {
            return (f, v);
        }
    }
    panic!("no seed provoked a BVE elimination; regression trigger lost");
}

/// Baseline fact the suite builds on: with nothing frozen, a plain
/// `solve()` really does eliminate the probe variable, and assuming it
/// afterwards really does panic. This is exactly the sequence an
/// incremental session used to die on.
#[test]
fn unfrozen_assumption_candidate_is_eliminated_and_panics() {
    let (f, v) = instance_with_elimination();
    let mut s = Solver::new(&f, inprocess_config());
    let _ = s.solve();
    assert!(
        s.find_eliminated(&[v.positive()]).is_some(),
        "probe variable must be eliminated on the deterministic replay"
    );
    let crash =
        run_isolated(move || s.solve_with_assumptions(&[v.positive()], Budget::unlimited()));
    assert!(
        crash.is_err(),
        "assuming an eliminated variable must still trip the contract"
    );
}

/// The fix: freezing the candidate up front keeps it out of BVE's pivot
/// set, so the later assumption call is safe — in both polarities.
#[test]
fn frozen_variable_survives_inprocessing_and_stays_assumable() {
    let (f, v) = instance_with_elimination();
    let mut s = Solver::new(&f, inprocess_config());
    s.freeze_var(v);
    assert!(s.is_frozen(v));
    let base = s.solve();
    assert!(
        s.find_eliminated(&[v.positive()]).is_none(),
        "frozen variable must never be eliminated"
    );
    let pos = s.solve_with_assumptions(&[v.positive()], Budget::unlimited());
    let neg = s.solve_with_assumptions(&[v.negative()], Budget::unlimited());
    // Semantic cross-check: if the formula is satisfiable, at least one
    // polarity of any variable is satisfiable too.
    if let SolveResult::Sat(_) = base {
        assert!(
            pos.is_sat() || neg.is_sat(),
            "SAT formula must be SAT under at least one polarity of v"
        );
    }
    for (lit, r) in [(v.positive(), &pos), (v.negative(), &neg)] {
        if let SolveResult::Sat(model) = r {
            let idx = lit.var().index() as usize;
            assert_eq!(
                model[idx],
                lit.is_positive(),
                "model must honor the assumption"
            );
            assert!(cnf::verify_model(&f, model).is_ok(), "model must verify");
        }
    }
}

/// `solve_with_assumptions` freezes its assumption set automatically:
/// assume, run a full inprocessing-heavy solve, assume again. Without
/// auto-freezing, the middle solve eliminates the variable and the last
/// call panics — today's behavior before this fix.
#[test]
fn solve_with_assumptions_auto_freezes_its_assumption_set() {
    let (f, v) = instance_with_elimination();
    let mut s = Solver::new(&f, inprocess_config());
    // A tiny budget: the point is registering the assumption, not
    // finishing the solve.
    let _ = s.solve_with_assumptions(&[v.positive()], Budget::conflicts(10));
    assert!(s.is_frozen(v), "assuming must freeze the variable");
    let _ = s.solve();
    assert!(
        s.find_eliminated(&[v.positive()]).is_none(),
        "auto-frozen variable must survive the full solve"
    );
    let replay = s.solve_with_assumptions(&[v.positive()], Budget::unlimited());
    if let SolveResult::Sat(model) = &replay {
        assert!(cnf::verify_model(&f, model).is_ok());
    }
}

/// Freezing is a pure restriction of BVE's candidate set: verdicts match
/// an unfrozen run on the same instance.
#[test]
fn freezing_never_changes_the_verdict() {
    for seed in [3, 17, 40] {
        let f = random_3sat(100, 426, seed);
        let mut plain = Solver::new(&f, inprocess_config());
        let plain_sat = plain.solve().is_sat();
        let mut frozen = Solver::new(&f, inprocess_config());
        for v in 0..f.num_vars() {
            frozen.freeze_var(Var::new(v));
        }
        let frozen_result = frozen.solve();
        assert_eq!(
            plain_sat,
            frozen_result.is_sat(),
            "seed {seed}: freezing all variables flipped the verdict"
        );
        assert!(
            first_eliminated_var(&frozen).is_none(),
            "seed {seed}: a fully-frozen solver must eliminate nothing"
        );
        if let SolveResult::Sat(model) = frozen_result {
            assert!(cnf::verify_model(&f, &model).is_ok());
        }
    }
}

/// Out-of-range freezes trip the documented range contract.
#[test]
fn freeze_var_panics_out_of_range() {
    let f = random_3sat(10, 20, 1);
    let mut s = Solver::from_cnf(&f);
    assert!(run_isolated(move || s.freeze_var(Var::new(10))).is_err());
}
