//! Chaos suite: deterministic fault injection against the solver and the
//! portfolio (`--features faults`).
//!
//! Every scenario asserts the fault-tolerance contract, not a specific
//! recovery path:
//!
//! * **never a wrong verdict** — under any single injected fault the
//!   solver returns the reference verdict, `Unknown`, or an `Err`; a
//!   SAT model is always verified and an UNSAT proof always replayed
//!   before being reported;
//! * **never a hang** — wall-clock budgets are honored within a small
//!   bound even while faults fire;
//! * **never a process crash** — worker panics degrade the race, I/O
//!   faults become diagnostics and exit code 1 (checked through the real
//!   `rsat` binary).
//!
//! Faults are armed through [`faults::install`], whose scope guard also
//! serializes chaos tests against each other (the plan is global state).

#![cfg(feature = "faults")]

use cnf::Cnf;
use sat_solver::{
    check_proof, solve_portfolio, Budget, PortfolioConfig, RestartStrategy, SolveResult, Solver,
    SolverConfig, StopCause,
};
use std::process::Command;
use std::time::{Duration, Instant};

/// Deterministic xorshift64* stream for reproducible random formulas.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// A random 3-SAT formula; `ratio ~ clauses/vars` near 4.26 makes the
/// instance conflict-heavy so budget checks and fault points are reached.
fn random_3sat(vars: u32, clauses: usize, seed: u64) -> Cnf {
    let mut rng = XorShift(seed | 1);
    let mut f = Cnf::new(vars);
    for _ in 0..clauses {
        let mut c = [0i32; 3];
        for slot in &mut c {
            let v = (rng.next() % u64::from(vars)) as i32 + 1;
            *slot = if rng.next().is_multiple_of(2) { v } else { -v };
        }
        f.add_dimacs(&c);
    }
    f
}

/// Ground truth from a fault-free sequential solve.
fn reference_verdict(f: &Cnf) -> SolveResult {
    Solver::new(f, SolverConfig::default()).solve_with_budget(Budget::unlimited())
}

/// The chaos contract on verdicts: correct or `Unknown`, never wrong.
fn assert_compatible(expected: &SolveResult, got: &SolveResult, ctx: &str) {
    match got {
        SolveResult::Unknown => {}
        SolveResult::Sat(_) => assert!(expected.is_sat(), "{ctx}: SAT but reference is UNSAT"),
        SolveResult::Unsat => assert!(expected.is_unsat(), "{ctx}: UNSAT but reference is SAT"),
    }
}

#[test]
fn worker_panic_race_degrades_to_a_surviving_winner() {
    for seed in [1u64, 2, 3] {
        let f = random_3sat(40, 170, seed);
        let expected = reference_verdict(&f);
        let scope = faults::install("worker-panic(worker=1,at=1)".parse().expect("plan"));
        let mut cfg = PortfolioConfig::new(4);
        cfg.proof = true;
        let out = solve_portfolio(&f, &cfg).expect("degraded race still verifies");
        assert_compatible(&expected, &out.result, "worker-panic");
        if scope.fired(faults::site::WORKER_PANIC) > 0 {
            assert_eq!(out.crashed, vec![1], "seed {seed}: worker 1 must crash");
            assert_ne!(out.winner, Some(1), "seed {seed}: a survivor must win");
            let report = out.workers.get(1).expect("crashed worker report");
            assert_eq!(report.verdict, "CRASHED");
        }
        assert!(
            !out.result.is_unknown(),
            "seed {seed}: three healthy workers must still solve this"
        );
    }
}

#[test]
fn corrupted_pool_clause_never_flips_the_verdict() {
    // `flip` mode exports a semantically wrong clause: importers may then
    // derive garbage, but verification (model check / proof replay) must
    // turn that into the correct verdict, Unknown, or an Err — never a
    // wrong answer.
    for seed in [1u64, 2, 3] {
        let f = random_3sat(40, 170, seed);
        let expected = reference_verdict(&f);
        let _scope = faults::install("pool-corrupt(worker=0,at=1,times=4)".parse().expect("plan"));
        let mut cfg = PortfolioConfig::new(3);
        cfg.proof = true;
        match solve_portfolio(&f, &cfg) {
            Ok(out) => assert_compatible(&expected, &out.result, "pool-corrupt flip"),
            // Detected corruption (failed model check or proof replay) is
            // an acceptable — and honest — outcome.
            Err(e) => eprintln!("seed {seed}: corruption detected: {e}"),
        }
    }
}

#[test]
fn alien_pool_clause_is_rejected_gracefully() {
    // `alien` mode exports a clause over a variable no worker knows;
    // importers must skip it (graceful rejection), not panic.
    for seed in [1u64, 2, 3] {
        let f = random_3sat(40, 170, seed);
        let expected = reference_verdict(&f);
        let _scope = faults::install(
            "pool-corrupt(worker=0,at=1,times=4,mode=alien)"
                .parse()
                .expect("plan"),
        );
        let mut cfg = PortfolioConfig::new(3);
        cfg.proof = true;
        match solve_portfolio(&f, &cfg) {
            Ok(out) => assert_compatible(&expected, &out.result, "pool-corrupt alien"),
            Err(e) => eprintln!("seed {seed}: alien clause tripped verification: {e}"),
        }
    }
}

/// Inprocessing-heavy configuration: a round at every restart with
/// frequent restarts, so the injected faults actually hit rounds.
fn inprocess_config() -> SolverConfig {
    SolverConfig {
        inprocess: true,
        inprocess_interval: 1,
        restart: RestartStrategy::Luby { scale: 2 },
        ..SolverConfig::default()
    }
}

/// Solves with inprocessing under the armed fault plan and asserts the
/// full chaos contract: verdict parity with the fault-free reference,
/// verified models, replayed proofs. Returns the solver for stats checks.
fn solve_inprocessed_under_faults(f: &Cnf, expected: &SolveResult, ctx: &str) -> Solver {
    let mut s = Solver::new(f, inprocess_config());
    s.enable_proof();
    let got = s.solve();
    assert_compatible(expected, &got, ctx);
    assert!(!got.is_unknown(), "{ctx}: unlimited solve returned Unknown");
    match got {
        SolveResult::Sat(model) => {
            assert!(
                cnf::verify_model(f, &model).is_ok(),
                "{ctx}: model invalid after faulted rounds"
            );
        }
        SolveResult::Unsat => {
            let proof = s.take_proof().expect("proof enabled");
            assert!(proof.claims_unsat(), "{ctx}: proof must end empty");
            check_proof(f, &proof)
                .unwrap_or_else(|e| panic!("{ctx}: DRAT replay failed after faulted rounds: {e}"));
        }
        SolveResult::Unknown => unreachable!(),
    }
    s
}

#[test]
fn inprocess_corruption_degrades_to_a_clean_skip() {
    // Detected corruption of the engine's working state must skip the
    // round before any mutation: the verdict stays right, the proof still
    // replays, and every fired fault is accounted as a skipped round.
    for seed in [1u64, 2, 3] {
        let f = random_3sat(40, 170, seed);
        let expected = reference_verdict(&f);
        let scope = faults::install("inprocess-corrupt(at=0,times=4)".parse().expect("plan"));
        let s = solve_inprocessed_under_faults(&f, &expected, "inprocess-corrupt");
        let stats = s.inprocess_stats().expect("engine enabled");
        let fired = scope.fired(faults::site::INPROCESS_CORRUPT);
        assert!(fired > 0, "seed {seed}: rounds must be reached");
        assert_eq!(
            stats.skipped_rounds, fired,
            "seed {seed}: every fired corruption is a clean skip"
        );
        assert_eq!(
            stats.rounds + stats.skipped_rounds + stats.aborted_rounds - fired,
            stats.rounds + stats.aborted_rounds,
            "seed {seed}: skips never double-count"
        );
    }
}

#[test]
fn inprocess_stall_forces_a_bounded_mid_round_abort() {
    // A stalled round gets its step budget collapsed: the round must
    // abort mid-way, leave the solver consistent (parity + replay), and
    // never hang the solve.
    for seed in [1u64, 2, 3] {
        let f = random_3sat(40, 170, seed);
        let expected = reference_verdict(&f);
        let scope = faults::install("inprocess-stall(at=0,times=4)".parse().expect("plan"));
        let start = Instant::now();
        let s = solve_inprocessed_under_faults(&f, &expected, "inprocess-stall");
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(30),
            "seed {seed}: never-hang bound blown: {elapsed:?}"
        );
        let stats = s.inprocess_stats().expect("engine enabled");
        let fired = scope.fired(faults::site::INPROCESS_STALL);
        assert!(fired > 0, "seed {seed}: rounds must be reached");
        assert!(
            stats.aborted_rounds >= 1,
            "seed {seed}: a collapsed budget must abort at least one round \
             (aborted={}, fired={fired})",
            stats.aborted_rounds
        );
    }
}

#[test]
fn faulted_inprocessing_rounds_keep_audited_invariants() {
    // Both fault sites in one plan, with the checks feature's invariant
    // auditor running at every checkpoint if compiled in: a faulted round
    // must not leave occurrence/reconstruction state behind that the
    // auditor (or the final replay) would reject.
    let f = random_3sat(40, 170, 5);
    let expected = reference_verdict(&f);
    let _scope = faults::install(
        "inprocess-corrupt(at=1,times=2); inprocess-stall(at=3,times=2)"
            .parse()
            .expect("plan"),
    );
    let mut s = Solver::new(&f, inprocess_config());
    #[cfg(feature = "checks")]
    s.set_check_level(sat_solver::CheckLevel::Light);
    s.enable_proof();
    let got = s.solve();
    assert_compatible(&expected, &got, "mixed inprocess faults");
    s.audit_invariants(sat_solver::Checkpoint::PostInprocess)
        .expect("post-run invariant audit");
    if got.is_unsat() {
        let proof = s.take_proof().expect("proof enabled");
        check_proof(&f, &proof).expect("DRAT replay after mixed faults");
    }
}

#[test]
fn wall_clock_deadline_is_honored_sequentially() {
    let f = random_3sat(150, 640, 7);
    let deadline = Duration::from_millis(250);
    let mut solver = Solver::new(&f, SolverConfig::default());
    let start = Instant::now();
    let result = solver.solve_with_budget(Budget::wall_clock(deadline));
    let elapsed = start.elapsed();
    if result.is_unknown() {
        assert_eq!(solver.stop_cause(), Some(StopCause::Deadline));
        // The acceptance bound: cooperative checks at conflict and
        // decision boundaries keep the overshoot well under 100ms.
        assert!(
            elapsed < deadline + Duration::from_millis(100),
            "deadline overshoot: {elapsed:?}"
        );
        // Stats survive exhaustion intact.
        assert!(solver.stats().decisions > 0);
    } else {
        // Legitimately solved before the deadline — fine, but it must
        // not have taken longer than the budget allowed.
        assert!(elapsed < deadline + Duration::from_millis(100));
    }
}

#[test]
fn wall_clock_deadline_is_honored_per_portfolio_worker() {
    let f = random_3sat(150, 640, 11);
    let deadline = Duration::from_millis(250);
    let mut cfg = PortfolioConfig::new(4);
    cfg.budget = Budget::wall_clock(deadline);
    let start = Instant::now();
    let out = solve_portfolio(&f, &cfg).expect("exhausted race is not an error");
    let elapsed = start.elapsed();
    // Workers run sequentially-interleaved on few cores, but each checks
    // the shared deadline cooperatively; 2x is the never-hang bound.
    assert!(
        elapsed < 2 * deadline + Duration::from_millis(500),
        "{elapsed:?}"
    );
    if out.result.is_unknown() {
        assert!(out.winner.is_none());
        for w in &out.workers {
            let record = w.record.as_ref().expect("worker record");
            assert!(
                record
                    .degradations
                    .iter()
                    .any(|d| d.kind == "budget-exhausted" && d.detail == "deadline"),
                "worker {} record must carry the deadline degradation",
                w.worker
            );
        }
    }
}

#[test]
fn memory_ceiling_yields_unknown_with_intact_stats() {
    let f = random_3sat(120, 511, 5);
    // A ceiling just above the pre-search footprint lets the search run
    // until learned clauses push past it, so exhaustion happens with
    // real statistics on the books.
    let baseline = Solver::new(&f, SolverConfig::default()).approx_memory_bytes();
    let mut solver = Solver::new(&f, SolverConfig::default());
    let result = solver.solve_with_budget(Budget::memory_bytes(baseline + 512));
    assert!(result.is_unknown(), "tight ceiling must stop the search");
    assert_eq!(solver.stop_cause(), Some(StopCause::Memory));
    assert!(solver.approx_memory_bytes() > baseline);
    assert!(solver.stats().conflicts > 0, "stats survive exhaustion");
}

// ---------------------------------------------------------------------
// CLI-level faults, exercised through the real `rsat` binary (built with
// the same `faults` feature as this test).

fn rsat() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rsat"));
    // Never inherit a plan from the test environment by accident.
    cmd.env_remove(faults::ENV_VAR);
    cmd
}

fn write_cnf(name: &str, f: &Cnf) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("rsat-chaos-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, cnf::to_dimacs_string(f)).expect("write cnf");
    path
}

#[test]
fn rsat_reports_injected_dimacs_read_fault_and_exits_one() {
    let path = write_cnf("dimacs-io.cnf", &random_3sat(30, 128, 3));
    for (via_env, seed) in [(false, 1u64), (true, 2), (false, 3)] {
        let mut cmd = rsat();
        cmd.arg(&path);
        if via_env {
            cmd.env(faults::ENV_VAR, "dimacs-io(after=8)");
        } else {
            cmd.arg("--fault-plan=dimacs-io(after=8)");
        }
        let out = cmd.output().expect("spawn rsat");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(1), "seed {seed}: {stderr}");
        assert!(stderr.contains("rsat:"), "diagnostic expected: {stderr}");
        assert!(
            !stderr.contains("panicked"),
            "must be a diagnostic, not a panic: {stderr}"
        );
    }
}

#[test]
fn rsat_reports_truncated_proof_write_and_exits_one() {
    // Mid-write failure on the DRAT stream must be an explicit error —
    // a silently short proof would defeat downstream checking.
    let unsat = {
        let mut f = Cnf::new(3);
        for c in [[1, 2], [1, -2], [-1, 3], [-1, -3]] {
            f.add_dimacs(&c);
        }
        f.add_dimacs(&[2, -3]);
        f.add_dimacs(&[-2, 3]);
        f
    };
    assert!(reference_verdict(&unsat).is_unsat());
    let path = write_cnf("drat-truncate.cnf", &unsat);
    let proof = std::env::temp_dir().join("rsat-chaos-tests/truncated.drat");
    let out = rsat()
        .arg(&path)
        .arg("--proof")
        .arg(&proof)
        .arg("--fault-plan=drat-truncate(after=4)")
        .output()
        .expect("spawn rsat");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "{stderr}");
    assert!(stderr.contains("failed to write proof"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

/// Pigeonhole `php(pigeons, holes)`: UNSAT for `pigeons > holes`, with
/// enough conflicts/restarts that inprocessing rounds actually fire.
fn pigeonhole(pigeons: u32, holes: u32) -> Cnf {
    let mut f = Cnf::new(pigeons * holes);
    let var = |p: u32, h: u32| (p * holes + h + 1) as i32;
    for p in 0..pigeons {
        let clause: Vec<i32> = (0..holes).map(|h| var(p, h)).collect();
        f.add_dimacs(&clause);
    }
    for h in 0..holes {
        for p in 0..pigeons {
            for q in (p + 1)..pigeons {
                f.add_dimacs(&[-var(p, h), -var(q, h)]);
            }
        }
    }
    f
}

#[test]
fn rsat_inprocess_proof_truncation_sweep_always_errors() {
    // Inprocessing adds delete lines (subsumed/strengthened/eliminated
    // clauses) to the DRAT stream. Sweep the truncation point across the
    // whole proof — early (inside the header adds), mid (inside the new
    // delete lines), late (near the empty clause) — and require the same
    // contract at every cut: exit 1 with a diagnostic, never a silently
    // short proof, never a panic.
    let path = write_cnf("inprocess-truncate.cnf", &pigeonhole(6, 5));
    let proof = std::env::temp_dir().join("rsat-chaos-tests/inprocess-truncated.drat");

    // Control run: no fault. The proof must land complete, verified, and
    // actually contain inprocessing work (rounds fired, delete lines).
    let out = rsat()
        .arg(&path)
        .arg("--inprocess=1")
        .arg("--proof")
        .arg(&proof)
        .arg("--check")
        .output()
        .expect("spawn rsat");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(20), "{stdout}");
    assert!(
        stdout.contains("c proof VERIFIED by the built-in RUP checker"),
        "{stdout}"
    );
    assert!(
        !stdout.contains("c inprocess rounds 0 "),
        "rounds must fire on the control run: {stdout}"
    );
    let drat = std::fs::read_to_string(&proof).expect("control proof written");
    let deletes = drat.lines().filter(|l| l.starts_with("d ")).count();
    assert!(deletes > 0, "inprocessing must emit delete lines");

    for after in [4u64, 64, 512, 4096] {
        assert!(
            (after as usize) < drat.len(),
            "truncation point {after} must cut the {}-byte proof short",
            drat.len()
        );
        let out = rsat()
            .arg(&path)
            .arg("--inprocess=1")
            .arg("--proof")
            .arg(&proof)
            .arg(format!("--fault-plan=drat-truncate(after={after})"))
            .output()
            .expect("spawn rsat");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(1), "after={after}: {stderr}");
        assert!(
            stderr.contains("failed to write proof"),
            "after={after}: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "after={after}: {stderr}");
    }
}

#[test]
fn rsat_timeout_flag_yields_unknown_within_bound() {
    let path = write_cnf("timeout.cnf", &random_3sat(150, 640, 13));
    let start = Instant::now();
    let out = rsat()
        .arg(&path)
        .arg("--timeout")
        .arg("0.25")
        .output()
        .expect("spawn rsat");
    let elapsed = start.elapsed();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        elapsed < Duration::from_secs(5),
        "never hang past the deadline: {elapsed:?}"
    );
    if stdout.contains("s UNKNOWN") {
        assert_eq!(out.status.code(), Some(0), "{stdout}");
        assert!(stdout.contains("c stop: deadline"), "{stdout}");
    } else {
        // Solved inside the budget; statistics must still be present.
        assert!(stdout.contains("c decisions"), "{stdout}");
    }
}

#[test]
fn rsat_mem_limit_flag_yields_unknown_with_stop_cause() {
    let path = write_cnf("mem-limit.cnf", &random_3sat(50, 215, 17));
    let out = rsat()
        .arg(&path)
        .arg("--mem-limit")
        .arg("0")
        .output()
        .expect("spawn rsat");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("s UNKNOWN"), "{stdout}");
    assert!(stdout.contains("c stop: memory"), "{stdout}");
}

#[test]
fn rsat_rejects_malformed_fault_plan_politely() {
    let path = write_cnf("bad-plan.cnf", &random_3sat(10, 42, 23));
    let out = rsat()
        .arg(&path)
        .arg("--fault-plan=???(")
        .output()
        .expect("spawn rsat");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "{stderr}");
    assert!(stderr.contains("rsat:"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}
