//! Telemetry integration: recording must observe the search, never steer it.

use sat_solver::{Solver, SolverConfig, SolverStats, SolverTelemetry};
use std::time::Duration;
use telemetry::json::{FromJson, Json, ToJson};
use telemetry::{Event, JsonlSink, MemorySink, NullSink, Phase};

/// A pigeonhole formula (n pigeons, n-1 holes): small but conflict-rich,
/// so reductions, restarts, and minimization all fire.
fn php(pigeons: u32, holes: u32) -> cnf::Cnf {
    let mut f = cnf::Cnf::new(0);
    let var = |p: u32, h: u32| (p * holes + h + 1) as i32;
    for p in 0..pigeons {
        f.add_dimacs(&(0..holes).map(|h| var(p, h)).collect::<Vec<_>>());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                f.add_dimacs(&[-var(p1, h), -var(p2, h)]);
            }
        }
    }
    f
}

fn busy_config() -> SolverConfig {
    SolverConfig {
        reduce_init: 5,
        reduce_inc: 5,
        ..SolverConfig::default()
    }
}

fn solve_collecting(telemetry: Option<SolverTelemetry>) -> (bool, SolverStats) {
    let f = php(6, 5);
    let mut solver = Solver::new(&f, busy_config());
    if let Some(t) = telemetry {
        solver.set_telemetry(t);
    }
    let result = solver.solve();
    (result.is_unsat(), *solver.stats())
}

#[test]
fn telemetry_does_not_perturb_the_search() {
    let (bare_unsat, bare_stats) = solve_collecting(None);
    let (null_unsat, null_stats) = solve_collecting(Some(
        SolverTelemetry::new("php").with_sink(Box::new(NullSink)),
    ));
    let (mem_unsat, mem_stats) = solve_collecting(Some(
        SolverTelemetry::new("php")
            .with_sink(Box::new(MemorySink::default()))
            .with_progress(Duration::from_millis(1)),
    ));
    assert!(bare_unsat && null_unsat && mem_unsat);
    assert_eq!(
        bare_stats, null_stats,
        "NullSink telemetry changed the stats"
    );
    assert_eq!(bare_stats, mem_stats, "recording sink changed the stats");
}

#[test]
fn event_stream_brackets_the_solve_and_matches_stats() {
    let f = php(6, 5);
    let sink = MemorySink::default();
    let events_handle = sink.events_handle();
    let mut solver = Solver::new(&f, busy_config());
    solver.set_telemetry(SolverTelemetry::new("php-6-5").with_sink(Box::new(sink)));
    assert!(solver.solve().is_unsat());
    let stats = *solver.stats();

    let events = events_handle.lock().unwrap().clone();
    assert!(matches!(events.first(), Some(Event::SolveStart { .. })));
    assert!(matches!(events.last(), Some(Event::SolveEnd { .. })));
    let reductions = events
        .iter()
        .filter(|e| matches!(e, Event::Reduction { .. }))
        .count() as u64;
    assert_eq!(reductions, stats.reductions);

    let Some(Event::SolveStart {
        instance_id,
        policy,
        num_vars,
        num_clauses,
    }) = events.first()
    else {
        unreachable!()
    };
    assert_eq!(instance_id, "php-6-5");
    assert_eq!(policy, "default");
    assert_eq!(*num_vars, 30);
    assert_eq!(*num_clauses, 81); // 6 pigeon + 75 hole-exclusion clauses

    let Some(Event::SolveEnd { record }) = events.last() else {
        unreachable!()
    };
    assert_eq!(record.result, "UNSAT");
    assert_eq!(record.policy, "default");
    assert_eq!(
        SolverStats::from_json(&record.stats).unwrap(),
        stats,
        "record must embed the final stats"
    );
    assert!(record.peak_learned_clauses > 0);
    assert!(record.phases.calls(Phase::Propagate) > 0);
    assert!(record.phases.calls(Phase::Analyze) > 0);
    assert_eq!(record.phases.calls(Phase::Reduce), stats.reductions);
    assert_eq!(record.phases.calls(Phase::Restart), stats.restarts);
}

#[test]
fn recorder_histograms_match_solver_counters() {
    let f = php(6, 5);
    let mut solver = Solver::new(&f, busy_config());
    solver.set_telemetry(SolverTelemetry::new("php"));
    assert!(solver.solve().is_unsat());
    let stats = *solver.stats();
    let telemetry = solver.take_telemetry().expect("recorder installed");
    // The final top-level conflict aborts before a clause is learned, so
    // the histograms see exactly the learned clauses.
    assert_eq!(telemetry.glue_histogram().count(), stats.learned_clauses);
    assert_eq!(telemetry.glue_histogram().sum(), stats.glue_sum);
    assert_eq!(
        telemetry.learned_len_histogram().count(),
        stats.learned_clauses
    );
    assert_eq!(
        telemetry.trail_depth_histogram().count(),
        stats.learned_clauses
    );
    let record = telemetry.into_record().expect("solve completed");
    assert_eq!(record.result, "UNSAT");
    assert!(record.solve_time_s >= 0.0);
}

#[test]
fn jsonl_stream_parses_line_by_line() {
    let f = php(5, 4);
    let mut solver = Solver::new(&f, busy_config());
    solver.set_telemetry(
        SolverTelemetry::new("php-5-4").with_sink(Box::new(JsonlSink::new(Vec::new()))),
    );
    assert!(solver.solve().is_unsat());
    // The sink is consumed by the solver; re-emit through a fresh recorder
    // to check the serialized form instead.
    let record = solver
        .take_telemetry()
        .unwrap()
        .into_record()
        .expect("record available");
    let line = Event::SolveEnd {
        record: record.clone(),
    }
    .to_json()
    .to_string();
    let parsed = Json::parse(&line).expect("valid JSON");
    assert_eq!(
        parsed.get("event").and_then(Json::as_str),
        Some("solve_end")
    );
    assert_eq!(
        parsed.get("schema_version").and_then(Json::as_u64),
        Some(u64::from(telemetry::SCHEMA_VERSION))
    );
    let Event::SolveEnd { record: reparsed } = Event::from_json(&parsed).unwrap() else {
        unreachable!()
    };
    assert_eq!(reparsed, record);
}
