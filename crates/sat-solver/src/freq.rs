//! Per-variable propagation-frequency tracking (Section 3.1, Figure 3).
//!
//! Every time Boolean constraint propagation assigns a variable, the solver
//! bumps that variable's counter. Counters are reset at each clause-database
//! reduction, so they measure activity "since the last deletion" exactly as
//! Equation (2) requires.

use cnf::Var;

/// Propagation counters for every variable, with a cached maximum.
///
/// # Examples
///
/// ```
/// use sat_solver::FrequencyTable;
/// use cnf::Var;
/// let mut t = FrequencyTable::new(3);
/// for _ in 0..5 { t.bump(Var::new(0)); }
/// t.bump(Var::new(1));
/// assert_eq!(t.count(Var::new(0)), 5);
/// assert_eq!(t.max(), 5);
/// assert!(t.is_hot(Var::new(0), 0.8));
/// assert!(!t.is_hot(Var::new(1), 0.8));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrequencyTable {
    counts: Vec<u64>,
    max: u64,
    total: u64,
}

impl FrequencyTable {
    /// Creates a table for `num_vars` variables, all counters zero.
    pub fn new(num_vars: u32) -> Self {
        FrequencyTable {
            counts: vec![0; num_vars as usize],
            max: 0,
            total: 0,
        }
    }

    /// Increments `v`'s propagation counter.
    #[inline]
    pub fn bump(&mut self, v: Var) {
        // xtask: allow(hot-path-purity) bounds audited: the table is sized to the variable universe at construction
        let c = &mut self.counts[v.index() as usize];
        *c += 1;
        self.total += 1;
        if *c > self.max {
            self.max = *c;
        }
    }

    /// `f_v`: the propagation count of `v` since the last reset.
    #[inline]
    pub fn count(&self, v: Var) -> u64 {
        self.counts[v.index() as usize]
    }

    /// `f_max`: the maximum propagation count over all variables.
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Total propagations since the last reset.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Equation (2)'s predicate: whether `f_v > α · f_max`.
    ///
    /// When no propagation happened yet (`f_max == 0`) no variable is hot.
    #[inline]
    pub fn is_hot(&self, v: Var, alpha: f64) -> bool {
        self.max > 0 && self.count(v) as f64 > alpha * self.max as f64
    }

    /// Zeroes all counters (called at every clause-database reduction).
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.max = 0;
        self.total = 0;
    }

    /// Read-only view of all counters, indexed by variable index.
    ///
    /// This is the data behind the paper's Figure 3 histogram.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Normalized frequencies (`f_v / Σf`), the y-axis of Figure 3.
    /// Returns an empty vector when no propagation has been recorded.
    pub fn normalized(&self) -> Vec<f64> {
        if self.total == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_tracks_max_and_total() {
        let mut t = FrequencyTable::new(2);
        t.bump(Var::new(1));
        t.bump(Var::new(1));
        t.bump(Var::new(0));
        assert_eq!(t.max(), 2);
        assert_eq!(t.total(), 3);
        assert_eq!(t.count(Var::new(0)), 1);
    }

    #[test]
    fn hot_threshold_is_strict() {
        let mut t = FrequencyTable::new(2);
        for _ in 0..10 {
            t.bump(Var::new(0));
        }
        for _ in 0..8 {
            t.bump(Var::new(1));
        }
        // f_max = 10, α = 0.8 ⇒ hot requires f_v > 8 exactly
        assert!(t.is_hot(Var::new(0), 0.8));
        assert!(!t.is_hot(Var::new(1), 0.8));
    }

    #[test]
    fn nothing_hot_when_empty() {
        let t = FrequencyTable::new(3);
        assert!(!t.is_hot(Var::new(0), 0.0));
        assert!(t.normalized().is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = FrequencyTable::new(2);
        t.bump(Var::new(0));
        t.reset();
        assert_eq!(t.max(), 0);
        assert_eq!(t.total(), 0);
        assert_eq!(t.count(Var::new(0)), 0);
    }

    #[test]
    fn normalized_sums_to_one() {
        let mut t = FrequencyTable::new(3);
        for _ in 0..3 {
            t.bump(Var::new(0));
        }
        t.bump(Var::new(2));
        let n = t.normalized();
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((n[0] - 0.75).abs() < 1e-12);
    }
}
