//! Variable-move-to-front (VMTF) decision queue.
//!
//! Kissat's "focused" mode uses VMTF instead of EVSIDS: variables bumped in
//! conflict analysis move to the front of a doubly-linked queue, and
//! decisions take the frontmost unassigned variable. A search pointer makes
//! the amortized scan cost low: it only ever moves toward the back between
//! bumps, and bumps reset it to the front only when the bumped variable
//! becomes the new front.

use cnf::Var;

const NIL: u32 = u32::MAX;

/// A doubly-linked move-to-front queue over all variables.
#[derive(Debug, Clone)]
pub struct VmtfQueue {
    next: Vec<u32>,
    prev: Vec<u32>,
    head: u32,
    /// Scan hint: all variables in front of this one are assigned.
    search: u32,
}

impl VmtfQueue {
    /// Creates the queue containing variables `0..num_vars` in index order.
    pub fn new(num_vars: u32) -> Self {
        let n = num_vars as usize;
        let mut q = VmtfQueue {
            next: vec![NIL; n],
            prev: vec![NIL; n],
            head: if n == 0 { NIL } else { 0 },
            search: if n == 0 { NIL } else { 0 },
        };
        for i in 0..n {
            q.next[i] = if i + 1 < n { i as u32 + 1 } else { NIL };
            q.prev[i] = if i > 0 { i as u32 - 1 } else { NIL };
        }
        q
    }

    /// Moves `v` to the front (called when `v` is bumped in conflict
    /// analysis).
    pub fn bump(&mut self, v: Var) {
        let i = v.index();
        if self.head == i {
            return;
        }
        // unlink
        let (p, n) = (self.prev[i as usize], self.next[i as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        }
        if self.search == i {
            self.search = if p != NIL { p } else { self.head };
        }
        // link at front
        self.prev[i as usize] = NIL;
        self.next[i as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = i;
        }
        self.head = i;
        self.search = i;
    }

    /// Resets the scan hint to the front (called on backtracking, since
    /// unassigned variables may reappear near the front).
    pub fn rewind(&mut self) {
        self.search = self.head;
    }

    /// Returns the frontmost variable for which `is_unassigned` holds,
    /// advancing the scan hint.
    pub fn next_unassigned(&mut self, mut is_unassigned: impl FnMut(Var) -> bool) -> Option<Var> {
        let mut i = self.search;
        while i != NIL {
            let v = Var::new(i);
            if is_unassigned(v) {
                self.search = i;
                return Some(v);
            }
            i = self.next[i as usize];
        }
        self.search = NIL;
        None
    }

    #[cfg(test)]
    fn order(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut i = self.head;
        while i != NIL {
            out.push(i);
            i = self.next[i as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_order_is_index_order() {
        let q = VmtfQueue::new(4);
        assert_eq!(q.order(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn bump_moves_to_front() {
        let mut q = VmtfQueue::new(4);
        q.bump(Var::new(2));
        assert_eq!(q.order(), vec![2, 0, 1, 3]);
        q.bump(Var::new(3));
        assert_eq!(q.order(), vec![3, 2, 0, 1]);
        q.bump(Var::new(3)); // bumping the head is a no-op
        assert_eq!(q.order(), vec![3, 2, 0, 1]);
    }

    #[test]
    fn next_unassigned_skips_assigned() {
        let mut q = VmtfQueue::new(4);
        q.bump(Var::new(1));
        // order 1,0,2,3; pretend 1 and 0 are assigned
        let assigned = [true, true, false, false];
        let v = q.next_unassigned(|v| !assigned[v.index() as usize]);
        assert_eq!(v, Some(Var::new(2)));
        // hint advanced: further queries with same predicate start at 2
        let v = q.next_unassigned(|v| !assigned[v.index() as usize]);
        assert_eq!(v, Some(Var::new(2)));
    }

    #[test]
    fn rewind_restores_front_scan() {
        let mut q = VmtfQueue::new(3);
        assert_eq!(q.next_unassigned(|_| false), None);
        q.rewind();
        assert_eq!(q.next_unassigned(|_| true), Some(Var::new(0)));
    }

    #[test]
    fn empty_queue() {
        let mut q = VmtfQueue::new(0);
        assert_eq!(q.next_unassigned(|_| true), None);
        q.rewind();
    }

    #[test]
    fn bump_every_variable_reverses_order() {
        let mut q = VmtfQueue::new(5);
        for i in 0..5 {
            q.bump(Var::new(i));
        }
        assert_eq!(q.order(), vec![4, 3, 2, 1, 0]);
    }
}
