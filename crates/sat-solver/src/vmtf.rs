//! Variable-move-to-front (VMTF) decision queue.
//!
//! Kissat's "focused" mode uses VMTF instead of EVSIDS: variables bumped in
//! conflict analysis move to the front of a doubly-linked queue, and
//! decisions take the frontmost unassigned variable. A search pointer makes
//! the amortized scan cost low: it only ever moves toward the back between
//! bumps, and bumps reset it to the front only when the bumped variable
//! becomes the new front.

use crate::varmap::VarMap;
use cnf::Var;

const NIL: u32 = u32::MAX;

/// A doubly-linked move-to-front queue over all variables.
#[derive(Debug, Clone)]
pub struct VmtfQueue {
    next: VarMap<u32>,
    prev: VarMap<u32>,
    head: u32,
    /// Scan hint: all variables in front of this one are assigned.
    search: u32,
}

impl VmtfQueue {
    /// Creates the queue containing variables `0..num_vars` in index order.
    pub fn new(num_vars: u32) -> Self {
        let n = num_vars;
        let mut q = VmtfQueue {
            next: VarMap::new(n, NIL),
            prev: VarMap::new(n, NIL),
            head: if n == 0 { NIL } else { 0 },
            search: if n == 0 { NIL } else { 0 },
        };
        for i in 0..n {
            q.next.set(Var::new(i), if i + 1 < n { i + 1 } else { NIL });
            q.prev.set(Var::new(i), if i > 0 { i - 1 } else { NIL });
        }
        q
    }

    /// Moves `v` to the front (called when `v` is bumped in conflict
    /// analysis).
    pub fn bump(&mut self, v: Var) {
        let i = v.index();
        if self.head == i {
            return;
        }
        // unlink
        let (p, n) = (self.prev.get(v), self.next.get(v));
        if p != NIL {
            self.next.set(Var::new(p), n);
        }
        if n != NIL {
            self.prev.set(Var::new(n), p);
        }
        if self.search == i {
            self.search = if p != NIL { p } else { self.head };
        }
        // link at front
        self.prev.set(v, NIL);
        self.next.set(v, self.head);
        if self.head != NIL {
            self.prev.set(Var::new(self.head), i);
        }
        self.head = i;
        self.search = i;
    }

    /// Resets the scan hint to the front (called on backtracking, since
    /// unassigned variables may reappear near the front).
    pub fn rewind(&mut self) {
        self.search = self.head;
    }

    /// Returns the frontmost variable for which `is_unassigned` holds,
    /// advancing the scan hint.
    pub fn next_unassigned(&mut self, mut is_unassigned: impl FnMut(Var) -> bool) -> Option<Var> {
        let mut i = self.search;
        while i != NIL {
            let v = Var::new(i);
            if is_unassigned(v) {
                self.search = i;
                return Some(v);
            }
            i = self.next.get(v);
        }
        self.search = NIL;
        None
    }

    /// Verifies the doubly-linked-queue invariants: the forward traversal
    /// from `head` visits every variable exactly once, `prev` is the exact
    /// inverse of `next`, and the scan hint is `NIL` or on the list.
    ///
    /// Shared by the unit tests below and the runtime invariant auditor
    /// (`check.rs`); returns a description of the first violation found.
    pub(crate) fn check_invariant(&self) -> Result<(), String> {
        let n = self.next.len();
        if n == 0 {
            if self.head != NIL || self.search != NIL {
                return Err("empty queue must have NIL head and search".into());
            }
            return Ok(());
        }
        if self.head == NIL {
            return Err("non-empty queue has NIL head".into());
        }
        let mut visited = vec![false; n];
        let mut count = 0usize;
        let mut prev = NIL;
        let mut i = self.head;
        let mut search_seen = self.search == NIL;
        while i != NIL {
            let v = Var::new(i);
            let slot = visited
                .get_mut(i as usize)
                .ok_or_else(|| format!("queue links to out-of-range variable {i}"))?;
            if *slot {
                return Err(format!("queue traversal revisits variable {i} (cycle)"));
            }
            *slot = true;
            count += 1;
            if self.prev.get(v) != prev {
                return Err(format!(
                    "prev pointer of variable {i} is {} but predecessor is {prev}",
                    self.prev.get(v)
                ));
            }
            if self.search == i {
                search_seen = true;
            }
            prev = i;
            i = self.next.get(v);
        }
        if count != n {
            return Err(format!("queue traversal visits {count} of {n} variables"));
        }
        if !search_seen {
            return Err(format!("search hint {} is not on the queue", self.search));
        }
        Ok(())
    }

    #[cfg(test)]
    fn order(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut i = self.head;
        while i != NIL {
            out.push(i);
            i = self.next.get(Var::new(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_order_is_index_order() {
        let q = VmtfQueue::new(4);
        assert_eq!(q.order(), vec![0, 1, 2, 3]);
        assert_eq!(q.check_invariant(), Ok(()));
    }

    #[test]
    fn bump_moves_to_front() {
        let mut q = VmtfQueue::new(4);
        q.bump(Var::new(2));
        assert_eq!(q.order(), vec![2, 0, 1, 3]);
        q.bump(Var::new(3));
        assert_eq!(q.order(), vec![3, 2, 0, 1]);
        q.bump(Var::new(3)); // bumping the head is a no-op
        assert_eq!(q.order(), vec![3, 2, 0, 1]);
        assert_eq!(q.check_invariant(), Ok(()));
    }

    #[test]
    fn next_unassigned_skips_assigned() {
        let mut q = VmtfQueue::new(4);
        q.bump(Var::new(1));
        // order 1,0,2,3; pretend 1 and 0 are assigned
        let assigned = [true, true, false, false];
        let v = q.next_unassigned(|v| !assigned[v.index() as usize]);
        assert_eq!(v, Some(Var::new(2)));
        // hint advanced: further queries with same predicate start at 2
        let v = q.next_unassigned(|v| !assigned[v.index() as usize]);
        assert_eq!(v, Some(Var::new(2)));
        assert_eq!(q.check_invariant(), Ok(()));
    }

    #[test]
    fn rewind_restores_front_scan() {
        let mut q = VmtfQueue::new(3);
        assert_eq!(q.next_unassigned(|_| false), None);
        q.rewind();
        assert_eq!(q.next_unassigned(|_| true), Some(Var::new(0)));
    }

    #[test]
    fn empty_queue() {
        let mut q = VmtfQueue::new(0);
        assert_eq!(q.next_unassigned(|_| true), None);
        q.rewind();
        assert_eq!(q.check_invariant(), Ok(()));
    }

    #[test]
    fn bump_every_variable_reverses_order() {
        let mut q = VmtfQueue::new(5);
        for i in 0..5 {
            q.bump(Var::new(i));
        }
        assert_eq!(q.order(), vec![4, 3, 2, 1, 0]);
        assert_eq!(q.check_invariant(), Ok(()));
    }

    #[test]
    fn invariant_detects_corrupt_link() {
        let mut q = VmtfQueue::new(3);
        q.next.set(Var::new(2), 0); // introduce a cycle 0 -> 1 -> 2 -> 0
        assert!(q.check_invariant().is_err());
    }
}
