//! Learned/original clause storage for the CDCL solver.
//!
//! Clauses live in a slab indexed by [`ClauseRef`]. Deleted clauses are
//! marked garbage and their slots recycled through a free list, so
//! `ClauseRef`s held by watches and reasons stay valid until the owner drops
//! them (the solver detaches watches and checks reasons before deletion).

use crate::varmap::at;
use cnf::Lit;
use std::fmt;

/// A stable handle to a clause inside a [`ClauseDb`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClauseRef(u32);

impl ClauseRef {
    /// The raw slab index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ClauseRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClauseRef({})", self.0)
    }
}

/// A stored clause with the metadata clause-deletion policies consume.
#[derive(Clone, Debug)]
pub struct StoredClause {
    lits: Vec<Lit>,
    /// Literal block distance at learn time, updated downward when revisited.
    pub glue: u32,
    /// Bumped whenever the clause participates in conflict analysis.
    pub activity: f64,
    /// Whether this clause was learned (original clauses are never deleted).
    pub learned: bool,
    /// Whether the clause was imported from another portfolio worker.
    /// Imported clauses are always `learned` and go through the same
    /// reduction machinery as locally learned ones.
    pub imported: bool,
    /// Protected clauses survive the next reduction (recently used).
    pub protected: bool,
    garbage: bool,
}

impl StoredClause {
    /// The clause's literals. The first two are the watched literals.
    #[inline]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// The literal at position `k` (bounds-audited).
    #[inline]
    pub fn lit(&self, k: usize) -> Lit {
        at(&self.lits, k)
    }

    /// Swaps the literals at positions `a` and `b` (watch reordering).
    #[inline]
    pub fn swap_lits(&mut self, a: usize, b: usize) {
        self.lits.swap(a, b);
    }

    /// Number of literals.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }
}

/// Slab of clauses with recycling of deleted slots.
#[derive(Default)]
pub struct ClauseDb {
    clauses: Vec<StoredClause>,
    free: Vec<u32>,
    num_learned: usize,
    num_original: usize,
    num_imported: usize,
    lits_in_learned: usize,
    /// Total literal occurrences across *all* live clauses, maintained so
    /// [`ClauseDb::memory_bytes`] is O(1).
    live_lits: usize,
}

impl ClauseDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a clause and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lits` has fewer than two literals; unit
    /// and empty clauses are handled on the trail, not stored.
    pub fn add(&mut self, lits: Vec<Lit>, learned: bool, glue: u32) -> ClauseRef {
        self.add_full(lits, learned, false, glue)
    }

    /// Inserts a clause learned by another portfolio worker. Imported
    /// clauses are counted as learned *and* tracked separately so the
    /// invariant auditor can cross-check the exchange bookkeeping.
    pub fn add_imported(&mut self, lits: Vec<Lit>, glue: u32) -> ClauseRef {
        self.add_full(lits, true, true, glue)
    }

    fn add_full(&mut self, lits: Vec<Lit>, learned: bool, imported: bool, glue: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "stored clauses must have >= 2 literals");
        debug_assert!(learned || !imported, "imported clauses must be learned");
        if learned {
            self.num_learned += 1;
            self.lits_in_learned += lits.len();
        } else {
            self.num_original += 1;
        }
        if imported {
            self.num_imported += 1;
        }
        self.live_lits += lits.len();
        let clause = StoredClause {
            lits,
            glue,
            activity: 0.0,
            learned,
            imported,
            protected: false,
            garbage: false,
        };
        match self.free.pop() {
            Some(slot) => {
                let cref = ClauseRef(slot);
                *self.slot_mut(cref) = clause;
                cref
            }
            None => {
                self.clauses.push(clause);
                ClauseRef(self.clauses.len() as u32 - 1)
            }
        }
    }

    /// The slab slot behind `cref`: the single audited indexing site of
    /// this module (`ClauseRef`s are only minted by [`ClauseDb::add`]).
    #[inline]
    fn slot(&self, cref: ClauseRef) -> &StoredClause {
        debug_assert!(cref.index() < self.clauses.len(), "dangling {cref:?}");
        &self.clauses[cref.index()] // xtask: allow(no-index) audited slab access
    }

    /// Mutable counterpart of [`ClauseDb::slot`].
    #[inline]
    fn slot_mut(&mut self, cref: ClauseRef) -> &mut StoredClause {
        debug_assert!(cref.index() < self.clauses.len(), "dangling {cref:?}");
        &mut self.clauses[cref.index()] // xtask: allow(no-index) audited slab access
    }

    /// Accesses a live clause.
    ///
    /// # Panics
    ///
    /// Panics if `cref` refers to a deleted clause (debug builds).
    #[inline]
    pub fn clause(&self, cref: ClauseRef) -> &StoredClause {
        let c = self.slot(cref);
        debug_assert!(!c.garbage, "access to deleted clause {cref:?}");
        c
    }

    /// Mutable access to a live clause.
    #[inline]
    pub fn clause_mut(&mut self, cref: ClauseRef) -> &mut StoredClause {
        let c = self.slot_mut(cref);
        debug_assert!(!c.garbage, "access to deleted clause {cref:?}");
        c
    }

    /// Marks a clause deleted and recycles its slot.
    pub fn remove(&mut self, cref: ClauseRef) {
        let (learned, imported, len) = {
            let c = self.slot_mut(cref);
            debug_assert!(!c.garbage, "double delete of {cref:?}");
            c.garbage = true;
            (c.learned, c.imported, std::mem::take(&mut c.lits).len())
        };
        if learned {
            self.num_learned -= 1;
            self.lits_in_learned -= len;
        } else {
            self.num_original -= 1;
        }
        if imported {
            self.num_imported -= 1;
        }
        self.live_lits -= len;
        self.free.push(cref.index() as u32);
    }

    /// Whether the handle refers to a live clause.
    #[inline]
    pub fn is_live(&self, cref: ClauseRef) -> bool {
        !self.slot(cref).garbage
    }

    /// Number of live learned clauses.
    #[inline]
    pub fn num_learned(&self) -> usize {
        self.num_learned
    }

    /// Number of live original clauses.
    #[inline]
    pub fn num_original(&self) -> usize {
        self.num_original
    }

    /// Number of live imported clauses (a subset of the learned count).
    #[inline]
    pub fn num_imported(&self) -> usize {
        self.num_imported
    }

    /// Total literal occurrences in live learned clauses.
    #[inline]
    pub fn lits_in_learned(&self) -> usize {
        self.lits_in_learned
    }

    /// Approximate heap footprint of the database in bytes, computed in
    /// O(1) from maintained counters: the slab's slot array (capacity,
    /// since the allocation persists across deletions), the literal
    /// storage of live clauses, and the free list. Per-clause `Vec`
    /// over-allocation is not tracked — clause literal vectors are built
    /// exactly-sized — so this is a slight underestimate, which is the
    /// right direction for a *cooperative* memory ceiling.
    #[inline]
    pub fn memory_bytes(&self) -> u64 {
        let slab = self.clauses.capacity() * std::mem::size_of::<StoredClause>();
        let lits = self.live_lits * std::mem::size_of::<Lit>();
        let free = self.free.capacity() * std::mem::size_of::<u32>();
        (slab + lits + free) as u64
    }

    /// Iterates over handles of all live clauses.
    pub fn iter_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.garbage)
            .map(|(i, _)| ClauseRef(i as u32))
    }

    /// Iterates over handles of live learned clauses.
    pub fn iter_learned(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.garbage && c.learned)
            .map(|(i, _)| ClauseRef(i as u32))
    }

    /// Rescales all clause activities by `factor` (activity overflow guard).
    pub fn rescale_activity(&mut self, factor: f64) {
        for c in &mut self.clauses {
            if !c.garbage {
                c.activity *= factor;
            }
        }
    }
}

impl fmt::Debug for ClauseDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ClauseDb({} original, {} learned, {} free slots)",
            self.num_original,
            self.num_learned,
            self.free.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(ds: &[i32]) -> Vec<Lit> {
        ds.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    #[test]
    fn add_and_access() {
        let mut db = ClauseDb::new();
        let c = db.add(lits(&[1, -2, 3]), false, 0);
        assert_eq!(db.clause(c).len(), 3);
        assert_eq!(db.num_original(), 1);
        assert_eq!(db.num_learned(), 0);
    }

    #[test]
    fn remove_recycles_slot() {
        let mut db = ClauseDb::new();
        let a = db.add(lits(&[1, 2]), true, 2);
        db.remove(a);
        assert!(!db.is_live(a));
        assert_eq!(db.num_learned(), 0);
        let b = db.add(lits(&[3, 4]), true, 1);
        assert_eq!(a.index(), b.index(), "slot should be recycled");
        assert!(db.is_live(b));
    }

    #[test]
    fn learned_literal_accounting() {
        let mut db = ClauseDb::new();
        let a = db.add(lits(&[1, 2, 3]), true, 2);
        let _b = db.add(lits(&[1, 2]), true, 2);
        assert_eq!(db.lits_in_learned(), 5);
        db.remove(a);
        assert_eq!(db.lits_in_learned(), 2);
    }

    #[test]
    fn iter_learned_skips_garbage_and_original() {
        let mut db = ClauseDb::new();
        let _o = db.add(lits(&[1, 2]), false, 0);
        let l1 = db.add(lits(&[3, 4]), true, 2);
        let l2 = db.add(lits(&[5, 6]), true, 2);
        db.remove(l1);
        let learned: Vec<_> = db.iter_learned().collect();
        assert_eq!(learned, vec![l2]);
        assert_eq!(db.iter_refs().count(), 2);
    }

    #[test]
    fn memory_estimate_tracks_additions_and_deletions() {
        let mut db = ClauseDb::new();
        let empty = db.memory_bytes();
        let refs: Vec<ClauseRef> = (0..100)
            .map(|i| db.add(lits(&[i + 1, i + 2, -(i + 3)]), true, 2))
            .collect();
        let full = db.memory_bytes();
        assert!(full > empty);
        for r in refs {
            db.remove(r);
        }
        // Live-literal bytes are released (the dominant term for many
        // clauses); slab and free-list capacity persist by design.
        assert!(db.memory_bytes() < full);
        assert!(db.memory_bytes() > 0, "slab capacity is still accounted");
    }

    #[test]
    #[should_panic(expected = ">= 2")]
    fn rejects_unit_clause() {
        ClauseDb::new().add(lits(&[1]), false, 0);
    }

    #[test]
    fn imported_accounting() {
        let mut db = ClauseDb::new();
        let a = db.add_imported(lits(&[1, 2, 3]), 2);
        let _b = db.add(lits(&[4, 5]), true, 1);
        assert!(db.clause(a).imported && db.clause(a).learned);
        assert_eq!(db.num_imported(), 1);
        assert_eq!(db.num_learned(), 2);
        db.remove(a);
        assert_eq!(db.num_imported(), 0);
        assert_eq!(db.num_learned(), 1);
    }
}
