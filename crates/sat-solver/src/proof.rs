//! DRAT proof logging and a forward RUP proof checker.
//!
//! When proof logging is enabled the solver records every learned clause
//! (addition) and every clause removed by database reduction (deletion).
//! [`check_proof`] replays the proof against the original formula and
//! verifies that each added clause is a *reverse unit propagation* (RUP)
//! consequence — the standard certificate for UNSAT results.
//!
//! The checker favours clarity over speed (it re-scans the clause set during
//! propagation); it is intended for validating test-scale instances, not
//! competition proofs.

use cnf::{Cnf, Lit};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write};

/// One step of a DRAT proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofStep {
    /// Addition of a (learned) clause. Empty literals = the empty clause.
    Add(Vec<Lit>),
    /// Deletion of a clause.
    Delete(Vec<Lit>),
}

/// Records proof steps emitted by the solver.
#[derive(Debug, Default, Clone)]
pub struct ProofLogger {
    steps: Vec<ProofStep>,
}

impl ProofLogger {
    /// Creates an empty proof.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a clause addition.
    pub fn add(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Add(lits.to_vec()));
    }

    /// Records addition of the empty clause (the UNSAT terminator).
    pub fn add_empty(&mut self) {
        self.steps.push(ProofStep::Add(Vec::new()));
    }

    /// Records a clause deletion.
    pub fn delete(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Delete(lits.to_vec()));
    }

    /// The recorded steps in order.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Whether the proof ends with the empty clause (claims UNSAT).
    pub fn claims_unsat(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s, ProofStep::Add(l) if l.is_empty()))
    }

    /// Writes the proof in textual DRAT format (`d` prefix for deletions,
    /// `0`-terminated clauses).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_drat<W: Write>(&self, mut w: W) -> io::Result<()> {
        for step in &self.steps {
            let (prefix, lits) = match step {
                ProofStep::Add(l) => ("", l),
                ProofStep::Delete(l) => ("d ", l),
            };
            write!(w, "{prefix}")?;
            for l in lits {
                write!(w, "{} ", l.to_dimacs())?;
            }
            writeln!(w, "0")?;
        }
        Ok(())
    }
}

/// Why a proof failed to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// Step `index` added a clause that is not a RUP consequence.
    NotRup {
        /// Index into the proof's steps.
        index: usize,
    },
    /// The proof never derives the empty clause.
    NoEmptyClause,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::NotRup { index } => {
                write!(f, "proof step {index} is not a RUP consequence")
            }
            ProofError::NoEmptyClause => write!(f, "proof does not derive the empty clause"),
        }
    }
}

impl std::error::Error for ProofError {}

/// A multiset key for clause deletion lookups: sorted literal codes.
fn clause_key(lits: &[Lit]) -> Vec<u32> {
    let mut key: Vec<u32> = lits.iter().map(|l| l.code()).collect();
    key.sort_unstable();
    key.dedup();
    key
}

/// Forward-checks a DRAT proof of unsatisfiability for `formula`.
///
/// Each added clause must be derivable by reverse unit propagation from the
/// current clause set; deletions remove clauses from consideration.
/// Deletion of an unknown clause is ignored (matching `drat-trim`'s
/// permissive behaviour, since solvers may delete simplified forms of input
/// clauses).
///
/// # Errors
///
/// Returns [`ProofError::NotRup`] for the first invalid step, or
/// [`ProofError::NoEmptyClause`] if the proof never reaches a contradiction.
///
/// # Examples
///
/// ```
/// use sat_solver::{check_proof, Solver};
/// let f = cnf::parse_dimacs_str("p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n")?;
/// let mut s = Solver::from_cnf(&f);
/// s.enable_proof();
/// assert!(s.solve().is_unsat());
/// let proof = s.take_proof().expect("proof enabled");
/// assert!(check_proof(&f, &proof).is_ok());
/// # Ok::<(), cnf::ParseDimacsError>(())
/// ```
pub fn check_proof(formula: &Cnf, proof: &ProofLogger) -> Result<(), ProofError> {
    let mut active: Vec<Vec<Lit>> = formula
        .clauses()
        .iter()
        .map(|c| c.lits().to_vec())
        .collect();
    let mut index_of: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
    for (i, c) in active.iter().enumerate() {
        index_of.entry(clause_key(c)).or_default().push(i);
    }
    let mut deleted = vec![false; active.len()];

    for (step_idx, step) in proof.steps().iter().enumerate() {
        match step {
            ProofStep::Add(lits) => {
                if !is_rup(&active, &deleted, lits) {
                    return Err(ProofError::NotRup { index: step_idx });
                }
                if lits.is_empty() {
                    return Ok(()); // contradiction reached; proof complete
                }
                deleted.push(false);
                active.push(lits.clone());
                index_of
                    .entry(clause_key(lits))
                    .or_default()
                    .push(active.len() - 1);
            }
            ProofStep::Delete(lits) => {
                if let Some(slots) = index_of.get_mut(&clause_key(lits)) {
                    if let Some(pos) = slots.iter().position(|&i| !deleted[i]) {
                        deleted[slots[pos]] = true;
                        slots.swap_remove(pos);
                    }
                }
            }
        }
    }
    Err(ProofError::NoEmptyClause)
}

/// Checks that `lemma` follows from the active clauses by unit propagation
/// after asserting the negation of each of its literals.
fn is_rup(active: &[Vec<Lit>], deleted: &[bool], lemma: &[Lit]) -> bool {
    // assignment: map var index -> bool
    let mut assign: HashMap<u32, bool> = HashMap::new();
    for &l in lemma {
        let neg = !l;
        match assign.get(&neg.var().index()) {
            Some(&v) if v != neg.polarity() => return true, // ¬lemma inconsistent
            _ => {
                assign.insert(neg.var().index(), neg.polarity());
            }
        }
    }
    // Naive fixpoint propagation over all clauses.
    loop {
        let mut changed = false;
        for (i, clause) in active.iter().enumerate() {
            if deleted[i] {
                continue;
            }
            let mut unassigned: Option<Lit> = None;
            let mut satisfied = false;
            let mut count_unassigned = 0;
            for &l in clause {
                match assign.get(&l.var().index()) {
                    Some(&v) if l.eval(v) => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    // Duplicate occurrences of the same literal must not be
                    // double-counted, or clauses like (x ∨ x) never look unit.
                    None if unassigned != Some(l) => {
                        count_unassigned += 1;
                        unassigned = Some(l);
                    }
                    None => {}
                }
            }
            if satisfied {
                continue;
            }
            match count_unassigned {
                0 => return true, // conflict: lemma is RUP
                1 => {
                    let u = unassigned.expect("exactly one unassigned literal");
                    assign.insert(u.var().index(), u.polarity());
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(ds: &[i32]) -> Vec<Lit> {
        ds.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    fn cnf_of(clauses: &[&[i32]]) -> Cnf {
        let mut f = Cnf::new(0);
        for c in clauses {
            f.add_dimacs(c);
        }
        f
    }

    #[test]
    fn valid_manual_proof() {
        // (1 2)(1 -2)(-1 2)(-1 -2): derive (1), then empty.
        let f = cnf_of(&[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]);
        let mut p = ProofLogger::new();
        p.add(&lits(&[1]));
        p.add_empty();
        assert_eq!(check_proof(&f, &p), Ok(()));
    }

    #[test]
    fn bogus_lemma_rejected() {
        let f = cnf_of(&[&[1, 2]]);
        let mut p = ProofLogger::new();
        p.add(&lits(&[1])); // (1) is not RUP from (1 2)
        assert_eq!(check_proof(&f, &p), Err(ProofError::NotRup { index: 0 }));
    }

    #[test]
    fn missing_empty_clause_rejected() {
        let f = cnf_of(&[&[1], &[-1, 2]]);
        let mut p = ProofLogger::new();
        p.add(&lits(&[2])); // valid RUP but no contradiction
        assert_eq!(check_proof(&f, &p), Err(ProofError::NoEmptyClause));
    }

    #[test]
    fn deletion_weakens_the_database() {
        // With (1) deleted, lemma (2) is no longer RUP.
        let f = cnf_of(&[&[1], &[-1, 2]]);
        let mut p = ProofLogger::new();
        p.delete(&lits(&[1]));
        p.add(&lits(&[2]));
        assert_eq!(check_proof(&f, &p), Err(ProofError::NotRup { index: 1 }));
    }

    #[test]
    fn deleting_unknown_clause_is_ignored() {
        let f = cnf_of(&[&[1], &[-1]]);
        let mut p = ProofLogger::new();
        p.delete(&lits(&[5, 6]));
        p.add_empty();
        assert_eq!(check_proof(&f, &p), Ok(()));
    }

    #[test]
    fn tautological_negation_is_trivially_rup() {
        // lemma (1 -1): asserting ¬lemma assigns both 1:=false and 1:=true.
        let f = cnf_of(&[&[2]]);
        let mut p = ProofLogger::new();
        p.add(&lits(&[1, -1]));
        p.add(&lits(&[2, 3]));
        assert_eq!(check_proof(&f, &p), Err(ProofError::NoEmptyClause));
    }

    #[test]
    fn duplicate_literals_still_propagate() {
        // Regression: (x3 ∨ x3) must behave as the unit clause x3 during
        // RUP checking; duplicate occurrences were once double-counted.
        let f = cnf_of(&[&[3, 3], &[-3]]);
        let mut p = ProofLogger::new();
        p.add_empty();
        assert_eq!(check_proof(&f, &p), Ok(()));
    }

    #[test]
    fn drat_text_format() {
        let mut p = ProofLogger::new();
        p.add(&lits(&[1, -2]));
        p.delete(&lits(&[3]));
        p.add_empty();
        let mut out = Vec::new();
        p.write_drat(&mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "1 -2 0\nd 3 0\n0\n");
        assert!(p.claims_unsat());
    }
}
