//! In-process portfolio solving with clause sharing.
//!
//! [`solve_portfolio`] races N diversified [`Solver`]s on scoped threads:
//! each worker gets its own seed, deletion policy, branching heuristic, and
//! restart schedule (see [`worker_config`]), all workers watch one shared
//! [`AtomicBool`] stop flag, and learned clauses below a glue threshold
//! flow through a lock-striped [`SharedClausePool`]. The first worker to
//! reach a verdict wins; its model (SAT) or the shared DRAT log (UNSAT) is
//! verified before the portfolio returns.
//!
//! # Proof soundness under sharing
//!
//! A worker's private proof would not replay once it imports foreign
//! clauses, so the portfolio keeps a single global, append-ordered
//! [`ProofLogger`] instead: every worker appends **every** clause it learns
//! (before publishing it to the pool) and nothing is ever deleted from the
//! log. RUP is monotone — a clause that is a RUP consequence of a set of
//! clauses remains one under any superset — and each learned clause is RUP
//! with respect to the input plus the producer's earlier clauses and
//! imports, all of which precede it in the log. Hence every step of the
//! global log is RUP at its position, imported clauses need no extra
//! logging, and the empty clause appended for an UNSAT winner closes a
//! checkable proof. The built-in checker stops at the first empty clause,
//! so trailing clauses from losing workers are harmless.

use crate::instrument::SolverTelemetry;
use crate::proof::{check_proof, ProofError, ProofLogger};
use crate::solver::{Branching, ClauseExchange, Solver};
use crate::{Budget, PolicyKind, RestartStrategy, SolveResult, SolverConfig, SolverStats};
use cnf::{Cnf, Lit};
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use telemetry::json::Json;
use telemetry::RunRecord;

/// Default number of lock stripes in the shared pool.
const DEFAULT_STRIPES: usize = 8;
/// Default per-stripe clause capacity.
const DEFAULT_STRIPE_CAPACITY: usize = 4096;

/// A thread-safe per-worker solver customization hook (see
/// [`PortfolioConfig::configure`]).
pub type ConfigureHook = Arc<dyn Fn(&mut Solver) + Send + Sync>;

/// Configuration for one [`solve_portfolio`] call.
#[derive(Clone)]
pub struct PortfolioConfig {
    /// Number of racing workers (≥ 1).
    pub workers: usize,
    /// The base configuration; worker 0 runs it unchanged (modulo the
    /// policy mix), so `workers == 1` reproduces the sequential solver
    /// exactly. Workers ≥ 1 are diversified from it.
    pub base: SolverConfig,
    /// Per-worker search budget.
    pub budget: Budget,
    /// Deletion-policy assignment, cycled over workers. Empty means
    /// "alternate the base policy with its natural rival" (Default ↔
    /// PropFreq). `neuroselect::race` fills this from the classifier.
    pub policy_mix: Vec<PolicyKind>,
    /// Export learned clauses with glue ≤ this threshold (units included).
    pub export_glue: u32,
    /// Never export clauses longer than this.
    pub export_max_len: usize,
    /// Lock stripes in the shared pool.
    pub pool_stripes: usize,
    /// Per-stripe clause capacity; exports beyond it are dropped.
    pub pool_capacity: usize,
    /// Collect a shared DRAT log (required to verify UNSAT answers).
    pub proof: bool,
    /// Verify the winner (model check on SAT, RUP replay on UNSAT when a
    /// proof was collected) before returning.
    pub verify: bool,
    /// Telemetry instance-id prefix; worker records are tagged
    /// `{prefix}-w{worker}`.
    pub instance_id: String,
    /// Applied to every worker's solver right after construction (e.g. to
    /// set a check level in tests); must be thread-safe.
    pub configure: Option<ConfigureHook>,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            workers: 4,
            base: SolverConfig::default(),
            budget: Budget::unlimited(),
            policy_mix: Vec::new(),
            export_glue: 4,
            export_max_len: 32,
            pool_stripes: DEFAULT_STRIPES,
            pool_capacity: DEFAULT_STRIPE_CAPACITY,
            proof: false,
            verify: true,
            instance_id: String::from("portfolio"),
            configure: None,
        }
    }
}

impl PortfolioConfig {
    /// A default configuration with `workers` racing workers.
    pub fn new(workers: usize) -> Self {
        PortfolioConfig {
            workers,
            ..PortfolioConfig::default()
        }
    }
}

impl fmt::Debug for PortfolioConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PortfolioConfig")
            .field("workers", &self.workers)
            .field("policy_mix", &self.policy_mix)
            .field("export_glue", &self.export_glue)
            .field("proof", &self.proof)
            .field("verify", &self.verify)
            .finish_non_exhaustive()
    }
}

/// Why a portfolio solve could not return a trustworthy result.
#[derive(Debug)]
pub enum PortfolioError {
    /// The winning worker's SAT model failed verification.
    InvalidModel(String),
    /// The shared DRAT log failed RUP replay for an UNSAT verdict.
    ProofCheck(ProofError),
}

impl fmt::Display for PortfolioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortfolioError::InvalidModel(detail) => {
                write!(f, "winning model failed verification: {detail}")
            }
            PortfolioError::ProofCheck(e) => write!(f, "shared proof failed replay: {e}"),
        }
    }
}

impl std::error::Error for PortfolioError {}

/// Counter snapshot of a [`SharedClausePool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Clauses accepted into the pool.
    pub exported: u64,
    /// Clause copies handed to importing workers.
    pub imported: u64,
    /// Exports dropped because an identical clause was already pooled.
    pub dropped_duplicate: u64,
    /// Exports dropped because the target stripe was full.
    pub dropped_capacity: u64,
    /// Exports and imports skipped because the target stripe was poisoned
    /// by a crashed worker.
    pub dropped_poisoned: u64,
    /// Exports rejected and pooled entries withheld because their
    /// producer was quarantined after crashing.
    pub dropped_quarantined: u64,
}

/// One clause in the pool, cheap to clone across importers.
struct PoolEntry {
    producer: usize,
    glue: u32,
    lits: Arc<[Lit]>,
}

/// A lock stripe: the clauses routed to it plus their dedup keys.
#[derive(Default)]
struct Stripe {
    entries: Vec<PoolEntry>,
    /// Sorted literal codes of every entry; membership lookups only (never
    /// iterated), so insertion order cannot leak into results.
    keys: HashSet<Vec<u32>>,
}

/// A lock-striped clause pool shared by all portfolio workers.
///
/// Exported clauses are routed to a stripe by a deterministic hash of
/// their sorted literals; workers keep a per-stripe cursor and drain only
/// entries appended since their previous import, skipping their own.
pub struct SharedClausePool {
    stripes: Vec<Mutex<Stripe>>,
    capacity_per_stripe: usize,
    /// Bitmask of quarantined producers: bit `w` set means worker `w`'s
    /// entries are withheld from importers and its exports rejected.
    /// Workers ≥ 63 share the top bit — conservative (a crash among them
    /// quarantines them all), which only costs sharing, never soundness.
    quarantined: AtomicU64,
    // Pure statistics counters: ordering never gates correctness.
    exported: AtomicU64,       // xtask: allow(atomic-ordering) statistics counter
    imported: AtomicU64,       // xtask: allow(atomic-ordering) statistics counter
    dropped_dup: AtomicU64,    // xtask: allow(atomic-ordering) statistics counter
    dropped_cap: AtomicU64,    // xtask: allow(atomic-ordering) statistics counter
    dropped_poison: AtomicU64, // xtask: allow(atomic-ordering) statistics counter
    dropped_quar: AtomicU64,   // xtask: allow(atomic-ordering) statistics counter
}

impl SharedClausePool {
    /// Creates a pool with `stripes` lock stripes of `capacity` clauses.
    pub fn new(stripes: usize, capacity: usize) -> Self {
        let stripes = stripes.max(1);
        SharedClausePool {
            stripes: (0..stripes)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            capacity_per_stripe: capacity.max(1),
            quarantined: AtomicU64::new(0),
            exported: AtomicU64::new(0),
            imported: AtomicU64::new(0),
            dropped_dup: AtomicU64::new(0),
            dropped_cap: AtomicU64::new(0),
            dropped_poison: AtomicU64::new(0),
            dropped_quar: AtomicU64::new(0),
        }
    }

    /// Number of lock stripes.
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            exported: self.exported.load(Ordering::Relaxed), // xtask: allow(atomic-ordering) statistics counter
            imported: self.imported.load(Ordering::Relaxed), // xtask: allow(atomic-ordering) statistics counter
            dropped_duplicate: self.dropped_dup.load(Ordering::Relaxed), // xtask: allow(atomic-ordering) statistics counter
            dropped_capacity: self.dropped_cap.load(Ordering::Relaxed), // xtask: allow(atomic-ordering) statistics counter
            dropped_poisoned: self.dropped_poison.load(Ordering::Relaxed), // xtask: allow(atomic-ordering) statistics counter
            dropped_quarantined: self.dropped_quar.load(Ordering::Relaxed), // xtask: allow(atomic-ordering) statistics counter
        }
    }

    /// Quarantines `producer`: entries it already exported are withheld
    /// from future imports and new exports from it are rejected. Called
    /// when a worker crashes — its panic is evidence of internal-state
    /// corruption, so nothing it published is trusted anymore. (Clauses
    /// imported *before* the quarantine remain subject to end-of-race
    /// verification; see the module docs on soundness.)
    pub fn quarantine(&self, producer: usize) {
        // AcqRel publishes the bit before the crash is reported; importers
        // read with Acquire in `is_quarantined`.
        self.quarantined
            .fetch_or(quarantine_bit(producer), Ordering::AcqRel);
    }

    /// Whether `producer` has been quarantined.
    pub fn is_quarantined(&self, producer: usize) -> bool {
        self.quarantined.load(Ordering::Acquire) & quarantine_bit(producer) != 0
    }

    /// Locks a stripe, treating a stripe poisoned by a crashed worker as
    /// unavailable (`None`). Sharing is an optimization: a poisoned
    /// stripe may hold a half-inserted entry whose dedup key and clause
    /// disagree, so it is *skipped*, not recovered — the satellite
    /// hardening over the old silent `PoisonError::into_inner`.
    fn lock_stripe(&self, index: usize) -> Option<MutexGuard<'_, Stripe>> {
        let stripe = self
            .stripes
            .get(index)
            .unwrap_or_else(|| unreachable!("stripe index {index} routed out of range"));
        stripe.lock().ok()
    }

    /// Offers a clause to the pool. Returns `true` if it was accepted
    /// (producer healthy, not a duplicate, stripe not full or poisoned).
    pub fn export(&self, producer: usize, lits: &[Lit], glue: u32) -> bool {
        if self.is_quarantined(producer) {
            self.dropped_quar.fetch_add(1, Ordering::Relaxed); // xtask: allow(atomic-ordering) statistics counter
            return false;
        }
        let key = clause_key(lits);
        let stripe_index = route(&key, self.stripes.len());
        let Some(mut stripe) = self.lock_stripe(stripe_index) else {
            self.dropped_poison.fetch_add(1, Ordering::Relaxed); // xtask: allow(atomic-ordering) statistics counter
            return false;
        };
        if stripe.keys.contains(&key) {
            self.dropped_dup.fetch_add(1, Ordering::Relaxed); // xtask: allow(atomic-ordering) statistics counter
            return false;
        }
        if stripe.entries.len() >= self.capacity_per_stripe {
            self.dropped_cap.fetch_add(1, Ordering::Relaxed); // xtask: allow(atomic-ordering) statistics counter
            return false;
        }
        stripe.keys.insert(key);
        stripe.entries.push(PoolEntry {
            producer,
            glue,
            lits: lits.into(),
        });
        // Counters and telemetry can block or panic (sink I/O, metrics
        // asserts): keep them outside the stripe's critical section.
        drop(stripe);
        self.exported.fetch_add(1, Ordering::Relaxed); // xtask: allow(atomic-ordering) statistics counter
        telemetry::metrics::inc(telemetry::metrics::Counter::PoolExported);
        telemetry::trace::instant_with(
            "clause-export",
            &[("glue", u64::from(glue)), ("stripe", stripe_index as u64)],
        );
        true
    }

    /// Streams every clause appended since `cursors` (one per stripe) that
    /// `consumer` did not produce itself, advancing the cursors. Returns
    /// the number of clauses delivered.
    pub fn import_new(
        &self,
        consumer: usize,
        cursors: &mut [usize],
        each: &mut dyn FnMut(&[Lit], u32),
    ) -> u64 {
        let mut delivered = 0u64;
        let quarantined = self.quarantined.load(Ordering::Acquire);
        for (index, cursor) in cursors.iter_mut().enumerate() {
            let Some(stripe) = self.lock_stripe(index) else {
                // Poisoned stripe: withhold it entirely. The cursor is not
                // advanced — the stripe stays poisoned for the rest of the
                // race anyway.
                self.dropped_poison.fetch_add(1, Ordering::Relaxed); // xtask: allow(atomic-ordering) statistics counter
                continue;
            };
            // Snapshot the new tail under the lock; the callback runs after
            // release so one slow importer never blocks exporters.
            let mut withheld = 0u64;
            let fresh: Vec<(Arc<[Lit]>, u32)> = stripe
                .entries
                .get(*cursor..)
                .unwrap_or_default()
                .iter()
                .filter(|e| e.producer != consumer)
                .filter(|e| {
                    let healthy = quarantined & quarantine_bit(e.producer) == 0;
                    withheld += u64::from(!healthy);
                    healthy
                })
                .map(|e| (Arc::clone(&e.lits), e.glue))
                .collect();
            *cursor = stripe.entries.len();
            drop(stripe);
            if withheld > 0 {
                self.dropped_quar.fetch_add(withheld, Ordering::Relaxed); // xtask: allow(atomic-ordering) statistics counter
            }
            for (lits, glue) in fresh {
                telemetry::trace::instant_with(
                    "clause-import",
                    &[("glue", u64::from(glue)), ("stripe", index as u64)],
                );
                each(&lits, glue);
                delivered += 1;
            }
        }
        self.imported.fetch_add(delivered, Ordering::Relaxed); // xtask: allow(atomic-ordering) statistics counter
        telemetry::metrics::add(telemetry::metrics::Counter::PoolImported, delivered);
        delivered
    }
}

/// The quarantine-mask bit for a producer (workers ≥ 63 share bit 63).
fn quarantine_bit(producer: usize) -> u64 {
    1u64 << producer.min(63)
}

/// Sorted literal codes: the canonical dedup key of a clause.
fn clause_key(lits: &[Lit]) -> Vec<u32> {
    let mut key: Vec<u32> = lits.iter().map(|l| l.code()).collect();
    key.sort_unstable();
    key
}

/// Deterministic FNV-1a routing of a clause key to a stripe.
fn route(key: &[u32], stripes: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &code in key {
        h ^= u64::from(code);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % stripes.max(1) as u64) as usize
}

/// The per-worker [`ClauseExchange`]: filters exports by glue and length,
/// appends every learned clause to the shared proof log, and drains the
/// pool through per-stripe cursors.
struct WorkerExchange {
    worker: usize,
    pool: Arc<SharedClausePool>,
    cursors: Vec<usize>,
    export_glue: u32,
    export_max_len: usize,
    proof: Option<Arc<Mutex<ProofLogger>>>,
    exported: u64,
    imported: u64,
    /// Clauses learned by this worker so far (fault-point counter).
    learned: u64,
}

impl WorkerExchange {
    fn new(
        worker: usize,
        pool: Arc<SharedClausePool>,
        export_glue: u32,
        export_max_len: usize,
        proof: Option<Arc<Mutex<ProofLogger>>>,
    ) -> Self {
        let cursors = vec![0; pool.num_stripes()];
        WorkerExchange {
            worker,
            pool,
            cursors,
            export_glue,
            export_max_len,
            proof,
            exported: 0,
            imported: 0,
            learned: 0,
        }
    }
}

impl ClauseExchange for WorkerExchange {
    fn on_learn(&mut self, lits: &[Lit], glue: u32) {
        self.learned += 1;
        // Fault point: a worker panic mid-learn, possibly while other
        // workers hold stripe locks on the pool this worker shares.
        crate::resilience::inject_worker_panic(self.worker, self.learned);
        // Proof first, pool second: the pool insert synchronizes with the
        // consumer's stripe lock, so any clause visible to an importer is
        // already in the log — the ordering the RUP argument relies on.
        // The proof mutex is recovered (not skipped) on poisoning: the
        // logger's append is a single Vec push, so a poisoned guard means
        // at worst a complete, valid entry from the panicking worker, and
        // the log's validity is independently established by RUP replay.
        if let Some(proof) = &self.proof {
            proof
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .add(lits);
        }
        if glue <= self.export_glue && !lits.is_empty() && lits.len() <= self.export_max_len {
            // Fault point: corruption in the sharing channel. The proof
            // logged the clause as learned; the pool sees the corrupted
            // copy, exactly the hazard end-of-race verification guards.
            let exported =
                match crate::resilience::inject_pool_corruption(self.worker, self.exported, lits) {
                    Some(corrupted) => self.pool.export(self.worker, &corrupted, glue),
                    None => self.pool.export(self.worker, lits, glue),
                };
            if exported {
                self.exported += 1;
            }
        }
    }

    fn import(&mut self, each: &mut dyn FnMut(&[Lit], u32)) {
        self.imported += self.pool.import_new(self.worker, &mut self.cursors, each);
    }

    fn counters(&self) -> (u64, u64) {
        (self.exported, self.imported)
    }
}

/// What one worker did during the race.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Worker index (0-based; worker 0 runs the base configuration).
    pub worker: usize,
    /// Deletion-policy label of the worker's configuration.
    pub policy: String,
    /// The worker's seed.
    pub seed: u64,
    /// The worker's own verdict (`"SAT"`, `"UNSAT"`, `"UNKNOWN"`, or
    /// `"CRASHED"` for a worker that panicked).
    pub verdict: String,
    /// Whether the worker panicked (its exports were quarantined and the
    /// race degraded to the survivors).
    pub crashed: bool,
    /// Final solver statistics.
    pub stats: SolverStats,
    /// Clauses this worker published to the pool.
    pub exported: u64,
    /// Clauses this worker pulled from the pool.
    pub imported: u64,
    /// Telemetry record (phase timings, distributions), tagged
    /// `{instance_id}-w{worker}` with the exchange counters in `extra`.
    pub record: Option<RunRecord>,
}

/// The outcome of a portfolio race.
#[derive(Debug)]
pub struct PortfolioResult {
    /// The verdict (winner's model on SAT; `Unknown` iff every worker
    /// exhausted its budget).
    pub result: SolveResult,
    /// Index of the worker whose verdict won, if any.
    pub winner: Option<usize>,
    /// One report per worker, in worker order.
    pub workers: Vec<WorkerReport>,
    /// Indices of workers that crashed (panicked) during the race.
    pub crashed: Vec<usize>,
    /// Shared-pool counters.
    pub pool: PoolStats,
    /// The shared DRAT log when [`PortfolioConfig::proof`] was set; ends
    /// with the empty clause iff the verdict is UNSAT.
    pub proof: Option<ProofLogger>,
}

/// Derives worker `worker`'s configuration from the base: worker 0 is the
/// base itself (modulo the policy mix — the determinism anchor), workers
/// ≥ 1 get decorrelated seeds, alternating initial phases, and rotating
/// branching/restart schedules.
pub fn worker_config(base: &SolverConfig, worker: usize, mix: &[PolicyKind]) -> SolverConfig {
    let mut cfg = base.clone();
    if !mix.is_empty() {
        if let Some(&policy) = mix.get(worker % mix.len()) {
            cfg.policy = policy;
        }
    }
    if worker == 0 {
        return cfg;
    }
    cfg.seed = splitmix64(base.seed ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    cfg.initial_phase = worker % 2 == 1;
    match worker % 3 {
        1 => {
            cfg.restart = RestartStrategy::Luby {
                scale: 32 << (worker % 4),
            }
        }
        2 => {
            cfg.restart = RestartStrategy::GlueEma {
                margin: 1.25,
                min_interval: 50,
            }
        }
        _ => {} // keep the base schedule
    }
    if worker % 4 == 3 {
        cfg.branching = Branching::Vmtf;
    }
    cfg
}

/// splitmix64: decorrelates worker seeds from the base seed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The default policy alternation when no mix is given: the base policy
/// first (worker 0), then its natural rival.
fn default_mix(base: PolicyKind) -> Vec<PolicyKind> {
    let rival = match base {
        PolicyKind::Default => PolicyKind::PropFreq,
        _ => PolicyKind::Default,
    };
    vec![base, rival]
}

/// What came back from one worker thread: a finished solve, or a caught
/// panic (recorded, quarantined, and degraded around — never propagated
/// unless *every* worker crashed).
enum WorkerOutcome {
    // Boxed: the report (stats + telemetry record) dwarfs a WorkerCrash.
    Finished(Box<FinishedWorker>),
    Crashed(crate::resilience::WorkerCrash),
}

struct FinishedWorker {
    result: SolveResult,
    report: WorkerReport,
    /// Single-worker mode records its proof locally (no shared log).
    local_proof: Option<ProofLogger>,
}

/// The stand-in for a crashed worker: verdict `"CRASHED"`, zeroed stats,
/// and a telemetry record carrying the panic as a degradation event.
fn crashed_report(
    worker: usize,
    base: &SolverConfig,
    mix: &[PolicyKind],
    instance_id: &str,
    crash: &crate::resilience::WorkerCrash,
) -> WorkerReport {
    let cfg = worker_config(base, worker, mix);
    let policy = cfg.policy.to_string();
    let mut record = RunRecord::new(format!("{instance_id}-w{worker}"), policy.clone());
    record.result = "CRASHED".to_string();
    record.degrade("worker-crash", crash.message.clone());
    record.extra.set("worker", Json::from(worker));
    WorkerReport {
        worker,
        policy,
        seed: cfg.seed,
        verdict: "CRASHED".to_string(),
        crashed: true,
        stats: SolverStats::default(),
        exported: 0,
        imported: 0,
        record: Some(record),
    }
}

/// Races `config.workers` diversified solvers over `formula` and returns
/// the first verdict, verified before return (see the module docs).
///
/// With `workers == 1` no exchange or stop flag is installed, so the
/// search — and therefore [`SolverStats`] — is bit-identical to the
/// sequential solver under `config.base` (guarded by the determinism
/// regression test).
///
/// # Crash isolation
///
/// Worker threads run under [`run_isolated`](crate::run_isolated): a
/// panicking worker is reported as `verdict: "CRASHED"` (with the panic
/// message as a `worker-crash` degradation event in its telemetry
/// record), its pool exports are quarantined, and the race degrades to
/// the survivors.
///
/// # Panics
///
/// Panics if `config.workers == 0`, or re-raises the first worker panic
/// when **every** worker crashed (there is no survivor to degrade to).
///
/// # Examples
///
/// ```
/// use sat_solver::{solve_portfolio, PortfolioConfig};
/// let f = cnf::parse_dimacs_str("p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n")?;
/// let mut cfg = PortfolioConfig::new(2);
/// cfg.proof = true;
/// let outcome = solve_portfolio(&f, &cfg).expect("verified");
/// assert!(outcome.result.is_sat());
/// assert_eq!(outcome.workers.len(), 2);
/// # Ok::<(), cnf::ParseDimacsError>(())
/// ```
pub fn solve_portfolio(
    formula: &Cnf,
    config: &PortfolioConfig,
) -> Result<PortfolioResult, PortfolioError> {
    // xtask: allow(no-hard-assert) documented API contract, not search-loop code
    assert!(config.workers >= 1, "portfolio needs at least one worker");
    let n = config.workers;
    let mix = if config.policy_mix.is_empty() {
        default_mix(config.base.policy)
    } else {
        config.policy_mix.clone()
    };
    let stop = Arc::new(AtomicBool::new(false));
    let pool = Arc::new(SharedClausePool::new(
        config.pool_stripes,
        config.pool_capacity,
    ));
    let shared_proof = (config.proof && n > 1).then(|| Arc::new(Mutex::new(ProofLogger::new())));
    // usize::MAX = unclaimed; the first decisive worker CASes its index in.
    let winner = AtomicUsize::new(usize::MAX);

    let raw_outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let cfg = worker_config(&config.base, i, &mix);
                let stop = Arc::clone(&stop);
                let pool = Arc::clone(&pool);
                let quarantine_pool = Arc::clone(&pool);
                let shared_proof = shared_proof.clone();
                let winner = &winner;
                let configure = config.configure.clone();
                let instance_id = &config.instance_id;
                scope.spawn(move || {
                    let isolated = crate::resilience::run_isolated(move || {
                        run_worker(WorkerContext {
                            formula,
                            cfg,
                            worker: i,
                            workers: n,
                            budget: config.budget,
                            want_proof: config.proof,
                            export_glue: config.export_glue,
                            export_max_len: config.export_max_len,
                            instance_id,
                            stop,
                            pool,
                            shared_proof,
                            winner,
                            configure,
                        })
                    });
                    let outcome = match isolated {
                        Ok(finished) => WorkerOutcome::Finished(Box::new(finished)),
                        Err(crash) => {
                            // Quarantine before this thread is joined: by
                            // the time the crash is observable, nothing
                            // the worker published is trusted anymore.
                            quarantine_pool.quarantine(i);
                            telemetry::trace::instant("worker-crash");
                            telemetry::trace::instant_with("quarantine", &[("worker", i as u64)]);
                            WorkerOutcome::Crashed(crash)
                        }
                    };
                    // Drain this worker's trace ring while still on its
                    // thread — after a crash this preserves every event the
                    // worker recorded up to the panic.
                    telemetry::trace::flush();
                    outcome
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outcome) => outcome,
                // A panic that escaped the isolation wrapper itself (not a
                // worker panic — those are caught inside the thread).
                Err(panic) => {
                    WorkerOutcome::Crashed(crate::resilience::WorkerCrash::from_payload(panic))
                }
            })
            .collect()
    });

    // Degrade around crashed workers; only all-workers-dead propagates.
    if raw_outcomes
        .iter()
        .all(|o| matches!(o, WorkerOutcome::Crashed(_)))
    {
        if let Some(WorkerOutcome::Crashed(crash)) = raw_outcomes
            .into_iter()
            .find(|o| matches!(o, WorkerOutcome::Crashed(_)))
        {
            crate::resilience::propagate(crash);
        }
        unreachable!("workers >= 1, so an all-crashed race has a first crash");
    }
    let mut crashed: Vec<usize> = Vec::new();
    let mut outcomes: Vec<FinishedWorker> = raw_outcomes
        .into_iter()
        .enumerate()
        .map(|(i, outcome)| match outcome {
            WorkerOutcome::Finished(finished) => *finished,
            WorkerOutcome::Crashed(crash) => {
                crashed.push(i);
                FinishedWorker {
                    result: SolveResult::Unknown,
                    report: crashed_report(i, &config.base, &mix, &config.instance_id, &crash),
                    local_proof: None,
                }
            }
        })
        .collect();

    let winner_index = match winner.load(Ordering::Acquire) {
        usize::MAX => None,
        i => Some(i),
    };
    let result = match winner_index {
        Some(i) => outcomes
            .get_mut(i)
            .map(|o| std::mem::replace(&mut o.result, SolveResult::Unknown))
            .unwrap_or(SolveResult::Unknown),
        None => SolveResult::Unknown,
    };

    // Assemble the proof: single-worker mode recorded it locally; shared
    // mode closes the global log with the empty clause on UNSAT. The
    // shared-log mutex is recovered (not discarded) on poisoning — its
    // appends are atomic pushes, and RUP replay independently validates
    // whatever the crashed worker managed to log.
    let mut proof = match shared_proof {
        Some(arc) => Arc::try_unwrap(arc).ok().map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }),
        None => outcomes.iter_mut().find_map(|o| o.local_proof.take()),
    };
    if result.is_unsat() {
        if let Some(p) = &mut proof {
            if !p.claims_unsat() {
                p.add_empty();
            }
        }
    }

    if config.verify {
        if let Some(model) = result.model() {
            if let Err(e) = cnf::verify_model(formula, model) {
                return Err(PortfolioError::InvalidModel(e.to_string()));
            }
        }
        if result.is_unsat() {
            if let Some(p) = &proof {
                check_proof(formula, p).map_err(PortfolioError::ProofCheck)?;
            }
        }
    }

    Ok(PortfolioResult {
        result,
        winner: winner_index,
        workers: outcomes.into_iter().map(|o| o.report).collect(),
        crashed,
        pool: pool.stats(),
        proof,
    })
}

struct WorkerContext<'a> {
    formula: &'a Cnf,
    cfg: SolverConfig,
    worker: usize,
    workers: usize,
    budget: Budget,
    want_proof: bool,
    export_glue: u32,
    export_max_len: usize,
    instance_id: &'a str,
    stop: Arc<AtomicBool>,
    pool: Arc<SharedClausePool>,
    shared_proof: Option<Arc<Mutex<ProofLogger>>>,
    winner: &'a AtomicUsize,
    configure: Option<ConfigureHook>,
}

fn run_worker(ctx: WorkerContext<'_>) -> FinishedWorker {
    let policy = ctx.cfg.policy.to_string();
    let seed = ctx.cfg.seed;
    if telemetry::trace::armed() {
        // One Chrome lane per worker; pid 0 stays the coordinating thread
        // (and the NeuroSelect pipeline when racing under `neuroselect`).
        telemetry::trace::set_lane(
            ctx.worker as u32 + 1,
            &format!("worker {} ({policy})", ctx.worker),
        );
    }
    let _solve_span = telemetry::trace::span("solve");
    let mut solver = Solver::new(ctx.formula, ctx.cfg);
    if ctx.workers > 1 {
        solver.set_stop(Arc::clone(&ctx.stop));
        solver.set_exchange(Box::new(WorkerExchange::new(
            ctx.worker,
            Arc::clone(&ctx.pool),
            ctx.export_glue,
            ctx.export_max_len,
            ctx.shared_proof.clone(),
        )));
    } else if ctx.want_proof {
        // Single worker: its private proof is complete (nothing imported),
        // so it doubles as the portfolio's proof.
        solver.enable_proof();
    }
    if let Some(configure) = &ctx.configure {
        configure(&mut solver);
    }
    solver.set_telemetry(SolverTelemetry::new(format!(
        "{}-w{}",
        ctx.instance_id, ctx.worker
    )));

    let result = solver.solve_with_budget(ctx.budget);

    if !result.is_unknown()
        && ctx
            .winner
            .compare_exchange(usize::MAX, ctx.worker, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    {
        // First decisive worker wins; Release pairs with the losers'
        // Acquire loads of the stop flag.
        ctx.stop.store(true, Ordering::Release);
        telemetry::trace::instant_with("winner", &[("worker", ctx.worker as u64)]);
    }

    let (exported, imported) = solver
        .take_exchange()
        .map(|x| x.counters())
        .unwrap_or((0, 0));
    let verdict = match &result {
        SolveResult::Sat(_) => "SAT",
        SolveResult::Unsat => "UNSAT",
        SolveResult::Unknown => "UNKNOWN",
    };
    let mut record = solver
        .take_telemetry()
        .and_then(SolverTelemetry::into_record);
    if let Some(r) = &mut record {
        r.extra.set("worker", Json::from(ctx.worker));
        r.extra.set("seed", Json::from(seed));
        r.extra.set("pool_exported", Json::from(exported));
        r.extra.set("pool_imported", Json::from(imported));
        // An Unknown verdict is a degraded outcome; record why (budget
        // exhaustion vs. losing the race) rather than leaving consumers
        // to guess. External stops are how losers normally end, so only
        // genuine budget exhaustion is tagged as a degradation.
        if let Some(cause) = solver.stop_cause() {
            r.extra.set("stop_cause", Json::from(cause.as_str()));
            if cause != crate::StopCause::External {
                r.degrade("budget-exhausted", cause.as_str());
            }
        }
    }
    FinishedWorker {
        result,
        report: WorkerReport {
            worker: ctx.worker,
            policy,
            seed,
            verdict: verdict.to_string(),
            crashed: false,
            stats: *solver.stats(),
            exported,
            imported,
            record,
        },
        local_proof: solver.take_proof(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnf_of(clauses: &[&[i32]]) -> Cnf {
        let mut f = Cnf::new(0);
        for c in clauses {
            f.add_dimacs(c);
        }
        f
    }

    #[test]
    fn pool_dedup_and_routing() {
        let pool = SharedClausePool::new(4, 8);
        let lits: Vec<Lit> = [1, -2, 3].iter().map(|&d| Lit::from_dimacs(d)).collect();
        let permuted: Vec<Lit> = [3, 1, -2].iter().map(|&d| Lit::from_dimacs(d)).collect();
        assert!(pool.export(0, &lits, 2));
        assert!(!pool.export(1, &permuted, 2), "permutation must dedup");
        let stats = pool.stats();
        assert_eq!(stats.exported, 1);
        assert_eq!(stats.dropped_duplicate, 1);
    }

    #[test]
    fn pool_import_skips_own_clauses_and_advances_cursor() {
        let pool = SharedClausePool::new(2, 8);
        let a: Vec<Lit> = [1, 2].iter().map(|&d| Lit::from_dimacs(d)).collect();
        let b: Vec<Lit> = [-1, 3].iter().map(|&d| Lit::from_dimacs(d)).collect();
        assert!(pool.export(0, &a, 2));
        assert!(pool.export(1, &b, 2));
        let mut cursors = vec![0; pool.num_stripes()];
        let mut seen = Vec::new();
        pool.import_new(0, &mut cursors, &mut |lits, _| seen.push(lits.to_vec()));
        assert_eq!(seen, vec![b.clone()], "own clause must be skipped");
        seen.clear();
        pool.import_new(0, &mut cursors, &mut |lits, _| seen.push(lits.to_vec()));
        assert!(seen.is_empty(), "cursor must not re-deliver");
    }

    #[test]
    fn pool_capacity_drops() {
        let pool = SharedClausePool::new(1, 1);
        let a: Vec<Lit> = [1, 2].iter().map(|&d| Lit::from_dimacs(d)).collect();
        let b: Vec<Lit> = [3, 4].iter().map(|&d| Lit::from_dimacs(d)).collect();
        assert!(pool.export(0, &a, 2));
        assert!(!pool.export(0, &b, 2));
        assert_eq!(pool.stats().dropped_capacity, 1);
    }

    #[test]
    fn poisoned_stripe_is_skipped_not_recovered() {
        let pool = SharedClausePool::new(1, 8);
        let a: Vec<Lit> = [1, 2].iter().map(|&d| Lit::from_dimacs(d)).collect();
        let b: Vec<Lit> = [3, 4].iter().map(|&d| Lit::from_dimacs(d)).collect();
        assert!(pool.export(0, &a, 2));
        // Poison the only stripe the way a crashed worker would: panic
        // while holding its lock.
        let poisoner = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = pool.stripes.first().expect("one stripe").lock().unwrap();
            panic!("injected stripe poisoning");
        }));
        assert!(poisoner.is_err());
        // Exports to the poisoned stripe are dropped, not recovered.
        assert!(!pool.export(1, &b, 2));
        assert_eq!(pool.stats().dropped_poisoned, 1);
        // Importers skip the stripe entirely — even entries that predate
        // the poisoning are withheld.
        let mut cursors = vec![0; pool.num_stripes()];
        let mut seen = 0;
        pool.import_new(1, &mut cursors, &mut |_, _| seen += 1);
        assert_eq!(seen, 0, "poisoned stripe must not deliver");
        assert_eq!(pool.stats().imported, 0);
        assert!(pool.stats().dropped_poisoned >= 2);
    }

    #[test]
    fn quarantined_producer_is_withheld_and_rejected() {
        let pool = SharedClausePool::new(1, 8);
        let a: Vec<Lit> = [1, 2].iter().map(|&d| Lit::from_dimacs(d)).collect();
        let b: Vec<Lit> = [3, 4].iter().map(|&d| Lit::from_dimacs(d)).collect();
        let c: Vec<Lit> = [5, 6].iter().map(|&d| Lit::from_dimacs(d)).collect();
        assert!(pool.export(0, &a, 2));
        assert!(pool.export(1, &b, 2));
        pool.quarantine(0);
        assert!(pool.is_quarantined(0) && !pool.is_quarantined(1));
        // New exports from the quarantined producer are rejected…
        assert!(!pool.export(0, &c, 2));
        // …and its earlier entries are withheld from importers.
        let mut cursors = vec![0; pool.num_stripes()];
        let mut seen = Vec::new();
        pool.import_new(2, &mut cursors, &mut |lits, _| seen.push(lits.to_vec()));
        assert_eq!(seen, vec![b], "only the healthy producer's clause flows");
        assert_eq!(pool.stats().dropped_quarantined, 2);
    }

    #[test]
    fn one_crashed_worker_degrades_to_survivors() {
        use std::sync::atomic::AtomicUsize;
        let sat = cnf_of(&[&[1, 2], &[-2, 3]]);
        let mut cfg = PortfolioConfig::new(3);
        cfg.proof = true;
        let crashes = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&crashes);
        cfg.configure = Some(Arc::new(move |_s| {
            if counter.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("injected configure crash");
            }
        }));
        let r = solve_portfolio(&sat, &cfg).expect("survivors win");
        assert!(r.result.is_sat());
        assert_eq!(r.crashed.len(), 1);
        let crashed = *r.crashed.first().expect("one crash");
        let report = r.workers.get(crashed).expect("report exists");
        assert!(report.crashed);
        assert_eq!(report.verdict, "CRASHED");
        let record = report.record.as_ref().expect("crash record");
        assert_eq!(record.degradations.len(), 1);
        assert_eq!(record.degradations[0].kind, "worker-crash");
        assert_ne!(r.winner, Some(crashed), "a survivor must win");
    }

    #[test]
    #[should_panic(expected = "every worker crashed")]
    fn all_crashed_race_propagates_the_panic() {
        let sat = cnf_of(&[&[1, 2]]);
        let mut cfg = PortfolioConfig::new(2);
        cfg.configure = Some(Arc::new(|_s| panic!("every worker crashed")));
        let _ = solve_portfolio(&sat, &cfg);
    }

    #[test]
    fn portfolio_sat_and_unsat_small() {
        let sat = cnf_of(&[&[1, 2], &[-2, 3]]);
        let unsat = cnf_of(&[&[1, 2], &[1, -2], &[-1, 3], &[-1, -3]]);
        for workers in [1, 2, 3] {
            let mut cfg = PortfolioConfig::new(workers);
            cfg.proof = true;
            let r = solve_portfolio(&sat, &cfg).expect("verified sat");
            assert!(r.result.is_sat(), "workers={workers}");
            assert!(r.winner.is_some());
            let r = solve_portfolio(&unsat, &cfg).expect("verified unsat");
            assert!(r.result.is_unsat(), "workers={workers}");
            let proof = r.proof.expect("proof collected");
            assert!(proof.claims_unsat());
        }
    }

    #[test]
    fn worker_zero_is_the_base_config() {
        let base = SolverConfig::default();
        let w0 = worker_config(&base, 0, &[]);
        assert_eq!(w0.seed, base.seed);
        assert_eq!(w0.restart, base.restart);
        assert_eq!(w0.initial_phase, base.initial_phase);
        let w1 = worker_config(&base, 1, &[]);
        assert_ne!(w1.seed, base.seed, "workers ≥ 1 must be decorrelated");
    }

    #[test]
    fn policy_mix_cycles_over_workers() {
        let base = SolverConfig::default();
        let mix = [PolicyKind::PropFreq, PolicyKind::Activity];
        assert_eq!(worker_config(&base, 0, &mix).policy, PolicyKind::PropFreq);
        assert_eq!(worker_config(&base, 1, &mix).policy, PolicyKind::Activity);
        assert_eq!(worker_config(&base, 2, &mix).policy, PolicyKind::PropFreq);
    }
}
