//! Worker crash isolation for the portfolio.
//!
//! This module is the *only* place in the workspace allowed to re-raise a
//! caught panic (`resume_unwind`), enforced by the `no-unwind-escape`
//! xtask lint rule. The policy it implements:
//!
//! * every portfolio worker runs inside [`run_isolated`], so a panicking
//!   worker becomes a [`WorkerCrash`] value instead of tearing down the
//!   process;
//! * the race degrades to the surviving workers (the crashed worker's
//!   pool exports are quarantined by the caller);
//! * only when *every* worker crashed is the first panic re-raised via
//!   [`propagate`] — there is no survivor to degrade to, and swallowing
//!   the panic would turn a programming error into a silent `Unknown`.
//!
//! The module also hosts the solver-side fault-injection points of the
//! `faults` feature (worker panics, shared-pool corruption); they compile
//! to empty inline functions without it.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A caught worker panic: the payload (for possible re-raising) plus a
/// human-readable rendering for reports and telemetry.
pub struct WorkerCrash {
    /// Human-readable panic message.
    pub message: String,
    payload: Box<dyn Any + Send>,
}

impl std::fmt::Debug for WorkerCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCrash")
            .field("message", &self.message)
            .finish_non_exhaustive()
    }
}

impl WorkerCrash {
    /// Wraps a raw panic payload (e.g. from `JoinHandle::join`).
    pub fn from_payload(payload: Box<dyn Any + Send>) -> Self {
        let message = panic_message(payload.as_ref());
        WorkerCrash { message, payload }
    }
}

/// Renders a panic payload the way the default panic hook would.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

/// Runs `f`, converting a panic into a [`WorkerCrash`].
///
/// `AssertUnwindSafe` is sound here because the caller never touches the
/// crashed worker's state again: its solver (and everything else the
/// closure owned) is dropped mid-unwind, shared state is limited to the
/// panic-hardened pool/proof/flag primitives, and the caller's only
/// follow-up is quarantining the worker's pool exports.
pub fn run_isolated<T>(f: impl FnOnce() -> T) -> Result<T, WorkerCrash> {
    catch_unwind(AssertUnwindSafe(f)).map_err(WorkerCrash::from_payload)
}

/// Re-raises a crash caught by [`run_isolated`]. Called only when every
/// worker of a race crashed and there is no survivor to degrade to.
pub fn propagate(crash: WorkerCrash) -> ! {
    std::panic::resume_unwind(crash.payload)
}

/// Fault point [`faults::site::WORKER_PANIC`]: panics inside a worker
/// once its learned-clause counter reaches the armed threshold.
#[cfg(feature = "faults")]
#[inline]
pub(crate) fn inject_worker_panic(worker: usize, learned: u64) {
    if faults::fire(
        faults::site::WORKER_PANIC,
        &[("worker", worker as u64), ("at", learned)],
    )
    .is_some()
    {
        panic!("injected fault: worker {worker} panicked at learned clause {learned}");
    }
}

#[cfg(not(feature = "faults"))]
#[inline]
pub(crate) fn inject_worker_panic(_worker: usize, _learned: u64) {}

/// Fault point [`faults::site::POOL_CORRUPT`]: returns a corrupted copy
/// of a clause about to be exported to the shared pool. `mode=flip`
/// (default) negates the first literal — a semantically wrong clause that
/// downstream verification must catch or tolerate; `mode=alien` rewrites
/// it to a variable no solver knows — exercising the importer's graceful
/// rejection path.
#[cfg(feature = "faults")]
#[inline]
pub(crate) fn inject_pool_corruption(
    worker: usize,
    exports: u64,
    lits: &[cnf::Lit],
) -> Option<Vec<cnf::Lit>> {
    let cfg = faults::fire(
        faults::site::POOL_CORRUPT,
        &[("worker", worker as u64), ("at", exports)],
    )?;
    let mut corrupted = lits.to_vec();
    let first = corrupted.first_mut()?;
    match cfg.get("mode") {
        Some("alien") => *first = cnf::Lit::from_dimacs(9_000_000),
        _ => *first = !*first,
    }
    Some(corrupted)
}

#[cfg(not(feature = "faults"))]
#[inline]
pub(crate) fn inject_pool_corruption(
    _worker: usize,
    _exports: u64,
    _lits: &[cnf::Lit],
) -> Option<Vec<cnf::Lit>> {
    None
}

/// Fault point [`faults::site::INPROCESS_CORRUPT`]: reports the engine's
/// working state as corrupt once the round counter reaches the armed
/// threshold. The engine must skip the round cleanly.
#[cfg(feature = "faults")]
#[inline]
pub(crate) fn inject_inprocess_corruption(round: u64) -> bool {
    faults::fire(faults::site::INPROCESS_CORRUPT, &[("at", round)]).is_some()
}

#[cfg(not(feature = "faults"))]
#[inline]
pub(crate) fn inject_inprocess_corruption(_round: u64) -> bool {
    false
}

/// Fault point [`faults::site::INPROCESS_STALL`]: collapses the round's
/// step budget once the round counter reaches the armed threshold,
/// forcing a mid-round abort that must leave the solver consistent.
#[cfg(feature = "faults")]
#[inline]
pub(crate) fn inject_inprocess_stall(round: u64) -> bool {
    faults::fire(faults::site::INPROCESS_STALL, &[("at", round)]).is_some()
}

#[cfg(not(feature = "faults"))]
#[inline]
pub(crate) fn inject_inprocess_stall(_round: u64) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_isolated_passes_values_through() {
        assert_eq!(run_isolated(|| 41 + 1).expect("no panic"), 42);
    }

    #[test]
    fn run_isolated_catches_and_renders_panics() {
        let crash = run_isolated(|| -> u32 { panic!("boom {}", 7) }).unwrap_err();
        assert_eq!(crash.message, "boom 7");
        let crash = run_isolated(|| -> u32 { panic!("static boom") }).unwrap_err();
        assert_eq!(crash.message, "static boom");
    }

    #[test]
    fn propagate_reraises_the_original_payload() {
        let crash = run_isolated(|| -> () { panic!("escalate me") }).unwrap_err();
        let reraised = catch_unwind(AssertUnwindSafe(|| propagate(crash))).unwrap_err();
        assert_eq!(panic_message(reraised.as_ref()), "escalate me");
    }
}
