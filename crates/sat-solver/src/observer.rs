//! Search instrumentation: observer callbacks for conflicts, restarts, and
//! clause-database reductions.
//!
//! Observers enable the kind of in-flight measurement behind the paper's
//! Figure 3 (propagation-frequency snapshots at reduction time) without
//! baking every experiment into the solver. The built-in [`GlueTrace`]
//! records the learned-glue time series and per-reduction deletion counts.

/// Callbacks invoked by the solver during search. All methods default to
/// no-ops; implement only what you need.
///
/// Observers must be cheap: `on_conflict` fires on every conflict.
pub trait SearchObserver: std::any::Any {
    /// A conflict was analyzed; `glue` and `learned_len` describe the
    /// clause that was just learned.
    fn on_conflict(&mut self, conflict_no: u64, glue: u32, learned_len: usize) {
        let _ = (conflict_no, glue, learned_len);
    }

    /// A restart was performed.
    fn on_restart(&mut self, restart_no: u64) {
        let _ = restart_no;
    }

    /// A clause-database reduction finished, deleting `deleted` of
    /// `candidates` reducible clauses.
    fn on_reduction(&mut self, reduction_no: u64, deleted: usize, candidates: usize) {
        let _ = (reduction_no, deleted, candidates);
    }
}

/// A no-op observer (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SearchObserver for NullObserver {}

/// Records the glue time series and reduction history.
///
/// # Examples
///
/// ```
/// use sat_solver::{GlueTrace, Solver};
/// let f = sat_gen_example();
/// let mut solver = Solver::from_cnf(&f);
/// let trace = GlueTrace::default();
/// let trace = {
///     let mut solver = solver;
///     solver.set_observer(Box::new(trace));
///     solver.solve();
///     solver.take_observer::<GlueTrace>().expect("observer present")
/// };
/// assert_eq!(trace.glues.len() as u64, trace.conflicts);
/// # fn sat_gen_example() -> cnf::Cnf {
/// #     let mut f = cnf::Cnf::new(0);
/// #     for c in [[1, 2, 3], [-1, -2, 3], [1, -2, -3], [-1, 2, -3]] {
/// #         f.add_dimacs(&c);
/// #     }
/// #     f
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlueTrace {
    /// Glue of every learned clause, in conflict order.
    pub glues: Vec<u32>,
    /// Total conflicts observed.
    pub conflicts: u64,
    /// Total restarts observed.
    pub restarts: u64,
    /// `(deleted, candidates)` per reduction.
    pub reductions: Vec<(usize, usize)>,
}

impl SearchObserver for GlueTrace {
    fn on_conflict(&mut self, _conflict_no: u64, glue: u32, _learned_len: usize) {
        self.conflicts += 1;
        self.glues.push(glue);
    }

    fn on_restart(&mut self, _restart_no: u64) {
        self.restarts += 1;
    }

    fn on_reduction(&mut self, _reduction_no: u64, deleted: usize, candidates: usize) {
        self.reductions.push((deleted, candidates));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Solver, SolverConfig};

    #[test]
    fn trace_matches_solver_statistics() {
        let f = crate::preprocess::tests_support::php(6, 5);
        let mut solver = Solver::new(
            &f,
            SolverConfig {
                reduce_init: 5,
                reduce_inc: 5,
                ..SolverConfig::default()
            },
        );
        solver.set_observer(Box::new(GlueTrace::default()));
        assert!(solver.solve().is_unsat());
        let stats = *solver.stats();
        let trace = solver.take_observer::<GlueTrace>().expect("observer");
        // the final top-level conflict terminates the search before
        // analysis, so it is counted by stats but never observed
        assert_eq!(trace.conflicts, stats.conflicts - 1);
        assert_eq!(trace.restarts, stats.restarts);
        assert_eq!(trace.reductions.len() as u64, stats.reductions);
        assert_eq!(
            trace.reductions.iter().map(|&(d, _)| d as u64).sum::<u64>(),
            stats.deleted_clauses
        );
        assert_eq!(trace.glues.len() as u64, stats.learned_clauses);
        assert_eq!(trace.glues.iter().map(|&g| g as u64).sum::<u64>(), stats.glue_sum);
    }

    #[test]
    fn take_observer_of_wrong_type_is_none() {
        let f = cnf::parse_dimacs_str("p cnf 1 1\n1 0\n").unwrap();
        let mut solver = Solver::from_cnf(&f);
        solver.set_observer(Box::new(NullObserver));
        assert!(solver.take_observer::<GlueTrace>().is_none());
    }

    #[test]
    fn observerless_solving_is_unaffected() {
        let f = cnf::parse_dimacs_str("p cnf 2 2\n1 2 0\n-1 2 0\n").unwrap();
        let mut a = Solver::from_cnf(&f);
        let ra = a.solve();
        let mut b = Solver::from_cnf(&f);
        b.set_observer(Box::new(NullObserver));
        let rb = b.solve();
        assert_eq!(ra, rb);
        assert_eq!(a.stats(), b.stats());
    }
}
