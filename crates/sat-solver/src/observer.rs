//! Search instrumentation: observer callbacks for conflicts, restarts, and
//! clause-database reductions.
//!
//! Observers enable the kind of in-flight measurement behind the paper's
//! Figure 3 (propagation-frequency snapshots at reduction time) without
//! baking every experiment into the solver. The built-in [`GlueTrace`]
//! records the learned-glue time series and per-reduction deletion counts.

/// Callbacks invoked by the solver during search. All methods default to
/// no-ops; implement only what you need.
///
/// Observers must be cheap: `on_conflict` fires on every conflict.
///
/// `Send` is a supertrait so an installed observer never stops the
/// whole [`Solver`](crate::Solver) from moving between threads — the
/// portfolio workers and the `rsatd` session pool both rely on that.
pub trait SearchObserver: std::any::Any + Send {
    /// A conflict was analyzed; `glue` and `learned_len` describe the
    /// clause that was just learned.
    fn on_conflict(&mut self, conflict_no: u64, glue: u32, learned_len: usize) {
        let _ = (conflict_no, glue, learned_len);
    }

    /// A restart was performed.
    fn on_restart(&mut self, restart_no: u64) {
        let _ = restart_no;
    }

    /// A clause-database reduction finished, deleting `deleted` of
    /// `candidates` reducible clauses.
    fn on_reduction(&mut self, reduction_no: u64, deleted: usize, candidates: usize) {
        let _ = (reduction_no, deleted, candidates);
    }
}

/// A no-op observer (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SearchObserver for NullObserver {}

/// Records the glue time series, its distribution, and the reduction
/// history.
///
/// # Examples
///
/// ```
/// use sat_solver::{GlueTrace, Solver};
/// let f = cnf::parse_dimacs_str(
///     "p cnf 3 4\n1 2 3 0\n-1 -2 3 0\n1 -2 -3 0\n-1 2 -3 0\n",
/// )?;
/// let mut solver = Solver::from_cnf(&f);
/// solver.set_observer(Box::new(GlueTrace::default()));
/// solver.solve();
/// let trace = solver.take_observer::<GlueTrace>().expect("observer present");
/// assert_eq!(trace.glues.len() as u64, trace.conflicts);
/// assert_eq!(trace.glue_histogram.count(), trace.conflicts);
/// # Ok::<(), cnf::ParseDimacsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GlueTrace {
    /// Glue of every learned clause, in conflict order.
    pub glues: Vec<u32>,
    /// The same glues bucketed for distribution queries (mean, quantiles,
    /// per-bucket counts) without post-processing the series.
    pub glue_histogram: telemetry::Histogram,
    /// Total conflicts observed.
    pub conflicts: u64,
    /// Total restarts observed.
    pub restarts: u64,
    /// `(deleted, candidates)` per reduction.
    pub reductions: Vec<(usize, usize)>,
}

impl Default for GlueTrace {
    fn default() -> Self {
        GlueTrace {
            glues: Vec::new(),
            // One bucket per glue value through 7, then a coarse tail —
            // the same shape as `Solver::db_stats`'s glue histogram.
            glue_histogram: telemetry::Histogram::with_bounds(&[1, 2, 3, 4, 5, 6, 7, 16, 64]),
            conflicts: 0,
            restarts: 0,
            reductions: Vec::new(),
        }
    }
}

impl SearchObserver for GlueTrace {
    fn on_conflict(&mut self, _conflict_no: u64, glue: u32, _learned_len: usize) {
        self.conflicts += 1;
        self.glues.push(glue);
        self.glue_histogram.record(u64::from(glue));
    }

    fn on_restart(&mut self, _restart_no: u64) {
        self.restarts += 1;
    }

    fn on_reduction(&mut self, _reduction_no: u64, deleted: usize, candidates: usize) {
        self.reductions.push((deleted, candidates));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Solver, SolverConfig};

    #[test]
    fn trace_matches_solver_statistics() {
        let f = crate::preprocess::tests_support::php(6, 5);
        let mut solver = Solver::new(
            &f,
            SolverConfig {
                reduce_init: 5,
                reduce_inc: 5,
                ..SolverConfig::default()
            },
        );
        solver.set_observer(Box::new(GlueTrace::default()));
        assert!(solver.solve().is_unsat());
        let stats = *solver.stats();
        let trace = solver.take_observer::<GlueTrace>().expect("observer");
        // the final top-level conflict terminates the search before
        // analysis, so it is counted by stats but never observed
        assert_eq!(trace.conflicts, stats.conflicts - 1);
        assert_eq!(trace.restarts, stats.restarts);
        assert_eq!(trace.reductions.len() as u64, stats.reductions);
        assert_eq!(
            trace.reductions.iter().map(|&(d, _)| d as u64).sum::<u64>(),
            stats.deleted_clauses
        );
        assert_eq!(trace.glues.len() as u64, stats.learned_clauses);
        assert_eq!(
            trace.glues.iter().map(|&g| g as u64).sum::<u64>(),
            stats.glue_sum
        );
        assert_eq!(trace.glue_histogram.count(), stats.learned_clauses);
        assert_eq!(trace.glue_histogram.sum(), stats.glue_sum);
    }

    #[test]
    fn take_observer_of_wrong_type_is_none() {
        let f = cnf::parse_dimacs_str("p cnf 1 1\n1 0\n").unwrap();
        let mut solver = Solver::from_cnf(&f);
        solver.set_observer(Box::new(NullObserver));
        assert!(solver.take_observer::<GlueTrace>().is_none());
    }

    #[test]
    fn observerless_solving_is_unaffected() {
        let f = cnf::parse_dimacs_str("p cnf 2 2\n1 2 0\n-1 2 0\n").unwrap();
        let mut a = Solver::from_cnf(&f);
        let ra = a.solve();
        let mut b = Solver::from_cnf(&f);
        b.set_observer(Box::new(NullObserver));
        let rb = b.solve();
        assert_eq!(ra, rb);
        assert_eq!(a.stats(), b.stats());
    }
}
