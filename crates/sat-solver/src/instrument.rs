//! Telemetry wiring: structured instrumentation of the CDCL search.
//!
//! [`SolverTelemetry`] is the bridge between the solver and the
//! `telemetry` crate. It is strictly opt-in: a solver without telemetry
//! installed pays nothing (every hook sits behind an `Option` check), and
//! an installed recorder never changes search behaviour — it only reads
//! counters the solver maintains anyway. The invariance test in
//! `tests/telemetry.rs` pins that guarantee.
//!
//! This module also gives the solver's public statistics types a stable
//! JSON form ([`ToJson`]/[`FromJson`], the workspace's offline stand-in
//! for serde's `Serialize`/`Deserialize`).

use crate::{DbStats, PolicyKind, SolverStats};
use std::time::{Duration, Instant};
use telemetry::json::{FromJson, FromJsonError, Json, ToJson};
use telemetry::{Event, Histogram, NullSink, Phase, PhaseTimes, RunRecord, Sink};

/// Per-solve telemetry recorder installed via
/// [`Solver::set_telemetry`](crate::Solver::set_telemetry).
///
/// Collects per-phase wall time, the glue / learned-clause-length /
/// trail-depth-at-conflict distributions, and the peak clause-DB size;
/// emits structured [`Event`]s (solve start/end, reduction snapshots,
/// optional progress heartbeats) to a pluggable [`Sink`].
///
/// # Examples
///
/// ```
/// use sat_solver::{Solver, SolverTelemetry};
/// use telemetry::MemorySink;
///
/// let f = cnf::parse_dimacs_str("p cnf 2 2\n1 2 0\n-1 2 0\n")?;
/// let sink = MemorySink::default();
/// let events = sink.events_handle();
/// let mut solver = Solver::from_cnf(&f);
/// solver.set_telemetry(SolverTelemetry::new("example").with_sink(Box::new(sink)));
/// assert!(solver.solve().is_sat());
/// let record = solver.take_telemetry().unwrap().into_record().unwrap();
/// assert_eq!(record.result, "SAT");
/// assert!(!events.lock().unwrap().is_empty());
/// # Ok::<(), cnf::ParseDimacsError>(())
/// ```
pub struct SolverTelemetry {
    instance_id: String,
    sink: Box<dyn Sink>,
    progress_interval: Option<Duration>,
    phases: PhaseTimes,
    glue: Histogram,
    learned_len: Histogram,
    trail_depth: Histogram,
    peak_learned: u64,
    started: Option<Instant>,
    last_progress: Option<Instant>,
    record: Option<RunRecord>,
}

impl std::fmt::Debug for SolverTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverTelemetry")
            .field("instance_id", &self.instance_id)
            .field("phases", &self.phases)
            .field("peak_learned", &self.peak_learned)
            .finish_non_exhaustive()
    }
}

impl SolverTelemetry {
    /// A recorder for the named instance, with no event output
    /// ([`NullSink`]); measurements are still collected for the final
    /// [`RunRecord`].
    pub fn new(instance_id: impl Into<String>) -> Self {
        SolverTelemetry {
            instance_id: instance_id.into(),
            sink: Box::new(NullSink),
            progress_interval: None,
            phases: PhaseTimes::default(),
            // Glue is small (tier-1 threshold is 2, "good" clauses < 8);
            // lengths and trail depths span orders of magnitude.
            glue: Histogram::with_bounds(&[1, 2, 3, 4, 5, 6, 8, 12, 16, 32]),
            learned_len: Histogram::exponential(1, 2, 12),
            trail_depth: Histogram::exponential(1, 2, 16),
            peak_learned: 0,
            started: None,
            last_progress: None,
            record: None,
        }
    }

    /// Routes events into `sink` (JSONL file, in-memory test sink, …).
    pub fn with_sink(mut self, sink: Box<dyn Sink>) -> Self {
        self.sink = sink;
        self
    }

    /// Enables progress heartbeats at roughly this interval. Heartbeats
    /// are checked on conflict boundaries, so an idle interval shorter
    /// than the time between conflicts degrades gracefully.
    pub fn with_progress(mut self, interval: Duration) -> Self {
        self.progress_interval = Some(interval);
        self
    }

    /// Per-phase wall time and call counts collected so far.
    pub fn phases(&self) -> &PhaseTimes {
        &self.phases
    }

    /// Distribution of glue values over learned clauses.
    pub fn glue_histogram(&self) -> &Histogram {
        &self.glue
    }

    /// Distribution of learned-clause lengths.
    pub fn learned_len_histogram(&self) -> &Histogram {
        &self.learned_len
    }

    /// Distribution of trail depth at each conflict.
    pub fn trail_depth_histogram(&self) -> &Histogram {
        &self.trail_depth
    }

    /// Largest number of live learned clauses observed.
    pub fn peak_learned_clauses(&self) -> u64 {
        self.peak_learned
    }

    /// The summary of the most recent completed solve, consuming the
    /// recorder. `None` if no solve finished while installed.
    pub fn into_record(mut self) -> Option<RunRecord> {
        self.sink.flush();
        self.record.take()
    }

    // ---- hooks called by the solver ------------------------------------

    pub(crate) fn on_solve_start(&mut self, policy: &'static str, num_vars: u64, num_clauses: u64) {
        self.started = Some(Instant::now());
        self.last_progress = None;
        self.sink.emit(&Event::SolveStart {
            instance_id: self.instance_id.clone(),
            policy: policy.to_string(),
            num_vars,
            num_clauses,
        });
    }

    #[inline]
    pub(crate) fn add_phase(&mut self, phase: Phase, elapsed: Duration) {
        self.phases.add(phase, elapsed);
    }

    #[inline]
    pub(crate) fn on_conflict(
        &mut self,
        glue: u32,
        learned_len: usize,
        trail_depth: usize,
        live_learned: usize,
    ) {
        self.glue.record(u64::from(glue));
        self.learned_len.record(learned_len as u64);
        self.trail_depth.record(trail_depth as u64);
        self.peak_learned = self.peak_learned.max(live_learned as u64);
    }

    /// Emits a heartbeat when the configured interval has elapsed. Called
    /// on conflict boundaries only, and only when heartbeats are enabled.
    pub(crate) fn maybe_progress(&mut self, stats: &SolverStats, live_learned: usize) {
        let Some(interval) = self.progress_interval else {
            return;
        };
        let Some(started) = self.started else {
            return;
        };
        let now = Instant::now();
        let due = match self.last_progress {
            Some(last) => now.duration_since(last) >= interval,
            None => now.duration_since(started) >= interval,
        };
        if !due {
            return;
        }
        self.last_progress = Some(now);
        let elapsed_s = now.duration_since(started).as_secs_f64();
        let rate = |n: u64| {
            if elapsed_s > 0.0 {
                n as f64 / elapsed_s
            } else {
                0.0
            }
        };
        self.sink.emit(&Event::Progress {
            conflicts: stats.conflicts,
            propagations: stats.propagations,
            decisions: stats.decisions,
            learned: live_learned as u64,
            elapsed_s,
            conflicts_per_sec: rate(stats.conflicts),
            propagations_per_sec: rate(stats.propagations),
        });
    }

    pub(crate) fn on_reduction(
        &mut self,
        reduction_no: u64,
        candidates: usize,
        deleted: usize,
        learned_after: usize,
        conflicts: u64,
    ) {
        self.sink.emit(&Event::Reduction {
            reduction_no,
            candidates: candidates as u64,
            deleted: deleted as u64,
            learned_after: learned_after as u64,
            conflicts,
        });
    }

    pub(crate) fn on_solve_end(
        &mut self,
        result: &str,
        policy: &'static str,
        stats: &SolverStats,
        db: &DbStats,
    ) {
        let solve_time_s = self
            .started
            .take()
            .map_or(0.0, |s| s.elapsed().as_secs_f64());
        let mut record = RunRecord::new(self.instance_id.clone(), policy);
        record.result = result.to_string();
        record.solve_time_s = solve_time_s;
        record.peak_learned_clauses = self.peak_learned;
        record.phases = self.phases;
        record.stats = stats.to_json();
        record.extra = Json::object()
            .with("db", db.to_json())
            .with("glue_histogram", self.glue.to_json())
            .with("learned_len_histogram", self.learned_len.to_json())
            .with("trail_depth_histogram", self.trail_depth.to_json());
        self.sink.emit(&Event::SolveEnd {
            record: record.clone(),
        });
        self.sink.flush();
        self.record = Some(record);
    }
}

// ---- stable JSON forms for the solver's public statistics types --------

impl ToJson for SolverStats {
    fn to_json(&self) -> Json {
        Json::object()
            .with("decisions", Json::from(self.decisions))
            .with("propagations", Json::from(self.propagations))
            .with("conflicts", Json::from(self.conflicts))
            .with("restarts", Json::from(self.restarts))
            .with("reductions", Json::from(self.reductions))
            .with("learned_clauses", Json::from(self.learned_clauses))
            .with("deleted_clauses", Json::from(self.deleted_clauses))
            .with("minimized_lits", Json::from(self.minimized_lits))
            .with("glue_sum", Json::from(self.glue_sum))
    }
}

impl FromJson for SolverStats {
    fn from_json(value: &Json) -> Result<Self, FromJsonError> {
        let field = |key: &str| -> Result<u64, FromJsonError> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or(FromJsonError::field(key))
        };
        Ok(SolverStats {
            decisions: field("decisions")?,
            propagations: field("propagations")?,
            conflicts: field("conflicts")?,
            restarts: field("restarts")?,
            reductions: field("reductions")?,
            learned_clauses: field("learned_clauses")?,
            deleted_clauses: field("deleted_clauses")?,
            minimized_lits: field("minimized_lits")?,
            glue_sum: field("glue_sum")?,
        })
    }
}

impl ToJson for DbStats {
    fn to_json(&self) -> Json {
        Json::object()
            .with("original_clauses", Json::from(self.original_clauses))
            .with("learned_clauses", Json::from(self.learned_clauses))
            .with("learned_literals", Json::from(self.learned_literals))
            .with("live_clauses", Json::from(self.live_clauses))
            .with(
                "glue_histogram",
                Json::from(self.glue_histogram.map(|c| c as u64).to_vec()),
            )
    }
}

impl FromJson for DbStats {
    fn from_json(value: &Json) -> Result<Self, FromJsonError> {
        let field = |key: &str| -> Result<usize, FromJsonError> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .ok_or(FromJsonError::field(key))
        };
        let hist_json = value
            .get("glue_histogram")
            .and_then(Json::as_array)
            .ok_or(FromJsonError::field("glue_histogram"))?;
        let mut glue_histogram = [0usize; 8];
        if hist_json.len() != glue_histogram.len() {
            return Err(FromJsonError::new("glue_histogram must have 8 buckets"));
        }
        for (slot, v) in glue_histogram.iter_mut().zip(hist_json) {
            *slot = v.as_u64().ok_or(FromJsonError::field("glue_histogram"))? as usize;
        }
        Ok(DbStats {
            original_clauses: field("original_clauses")?,
            learned_clauses: field("learned_clauses")?,
            learned_literals: field("learned_literals")?,
            live_clauses: field("live_clauses")?,
            glue_histogram,
        })
    }
}

impl ToJson for PolicyKind {
    /// Serializes as the policy's display name (`"default"`,
    /// `"prop-freq"`, `"prop-freq(α=…)"`, `"activity"`).
    fn to_json(&self) -> Json {
        Json::from(self.to_string())
    }
}

impl FromJson for PolicyKind {
    fn from_json(value: &Json) -> Result<Self, FromJsonError> {
        let name = value
            .as_str()
            .ok_or(FromJsonError::new("policy must be a string"))?;
        match name {
            "default" => Ok(PolicyKind::Default),
            "prop-freq" => Ok(PolicyKind::PropFreq),
            "activity" => Ok(PolicyKind::Activity),
            other => {
                let alpha = other
                    .strip_prefix("prop-freq(α=")
                    .and_then(|rest| rest.strip_suffix(')'))
                    .and_then(|a| a.parse::<f64>().ok())
                    .ok_or_else(|| FromJsonError::new(format!("unknown policy `{other}`")))?;
                Ok(PolicyKind::PropFreqAlpha(alpha))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_stats_roundtrip() {
        let stats = SolverStats {
            decisions: 1,
            propagations: 2,
            conflicts: 3,
            restarts: 4,
            reductions: 5,
            learned_clauses: 6,
            deleted_clauses: 7,
            minimized_lits: 8,
            glue_sum: 9,
        };
        assert_eq!(SolverStats::from_json(&stats.to_json()).unwrap(), stats);
        assert!(SolverStats::from_json(&Json::object()).is_err());
    }

    #[test]
    fn db_stats_roundtrip() {
        let db = DbStats {
            original_clauses: 100,
            learned_clauses: 42,
            learned_literals: 400,
            live_clauses: 142,
            glue_histogram: [0, 1, 2, 3, 4, 5, 6, 7],
        };
        assert_eq!(DbStats::from_json(&db.to_json()).unwrap(), db);
    }

    #[test]
    fn policy_kind_roundtrip() {
        for policy in [
            PolicyKind::Default,
            PolicyKind::PropFreq,
            PolicyKind::PropFreqAlpha(0.625),
            PolicyKind::Activity,
        ] {
            assert_eq!(PolicyKind::from_json(&policy.to_json()).unwrap(), policy);
        }
        assert!(PolicyKind::from_json(&Json::from("no-such-policy")).is_err());
    }
}
