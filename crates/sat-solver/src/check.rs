//! Runtime invariant auditor for the CDCL solver.
//!
//! [`Solver::audit_invariants`] cross-checks the solver's redundant data
//! structures against each other — watch lists against the clause database,
//! the trail against the assignment and level maps, the reason graph against
//! the trail order, the frequency counters against the statistics — and
//! reports the first violation found. It is always compiled, so fuzzers and
//! property tests can call it directly on any build.
//!
//! The `checks` cargo feature additionally wires the auditor into the
//! search loop itself at four [`Checkpoint`]s (`rsat --check[=LEVEL]` on the
//! CLI). With the feature off, the checkpoints cost one dead branch each.
//!
//! The audit is O(database size) and intended for testing, fuzzing, and
//! debugging — not for production solving.

use crate::solver::{Checkpoint, Solver};
use crate::varmap::{at, VarMap};
use crate::LBool;
use cnf::{Lit, Var};
use std::fmt;

/// How aggressively the in-search auditor runs (see the `checks` feature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckLevel {
    /// No in-search auditing (checkpoints are skipped entirely).
    Off,
    /// Audit at [`Checkpoint::PostReduce`], [`Checkpoint::PostBackjump`],
    /// and [`Checkpoint::PostInprocess`] only — the events rare enough to
    /// audit at full strength without changing the solver's asymptotics.
    /// The default when the `checks` feature is enabled.
    #[default]
    Light,
    /// Audit at every checkpoint, including after every propagation
    /// fixpoint and every learned clause. Quadratic in search effort;
    /// reserve for small instances and bug hunts.
    Full,
}

impl CheckLevel {
    /// Whether the auditor should run at `checkpoint` under this level.
    pub fn covers(self, checkpoint: Checkpoint) -> bool {
        match self {
            CheckLevel::Off => false,
            CheckLevel::Light => matches!(
                checkpoint,
                Checkpoint::PostReduce | Checkpoint::PostBackjump | Checkpoint::PostInprocess
            ),
            CheckLevel::Full => true,
        }
    }

    /// Parses a CLI level name (`off`, `light`, `full`).
    pub fn parse(s: &str) -> Option<CheckLevel> {
        match s {
            "off" => Some(CheckLevel::Off),
            "light" => Some(CheckLevel::Light),
            "full" => Some(CheckLevel::Full),
            _ => None,
        }
    }
}

/// A violated solver invariant, as reported by
/// [`Solver::audit_invariants`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// The checkpoint at which the audit ran.
    pub checkpoint: Checkpoint,
    /// The invariant family that failed (stable, grep-friendly name).
    pub invariant: &'static str,
    /// Human-readable description with the offending indices.
    pub detail: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant `{}` violated at {:?}: {}",
            self.invariant, self.checkpoint, self.detail
        )
    }
}

impl std::error::Error for CheckError {}

/// Runs the auditor at an in-search checkpoint, honoring the solver's
/// configured [`CheckLevel`]. Panics on the first violation: a broken
/// invariant means later answers cannot be trusted.
#[cfg(feature = "checks")]
pub(crate) fn run_checkpoint(solver: &Solver, checkpoint: Checkpoint) {
    if !solver.check_level().covers(checkpoint) {
        return;
    }
    if let Err(e) = solver.audit_invariants(checkpoint) {
        panic!("solver self-check failed: {e}");
    }
}

struct Audit<'a> {
    s: &'a Solver,
    checkpoint: Checkpoint,
}

impl Audit<'_> {
    fn fail(&self, invariant: &'static str, detail: String) -> Result<(), CheckError> {
        Err(CheckError {
            checkpoint: self.checkpoint,
            invariant,
            detail,
        })
    }

    /// Trail shape: `trail_lim` monotone and in bounds, `qhead` in bounds,
    /// every trail literal true, levels matching the `trail_lim` partition,
    /// no variable assigned twice, and exactly the trail's variables
    /// assigned.
    fn trail(&self) -> Result<(), CheckError> {
        let s = self.s;
        let mut prev = 0usize;
        for (d, &lim) in s.trail_lim.iter().enumerate() {
            if lim < prev || lim > s.trail.len() {
                return self.fail(
                    "trail-lim-monotone",
                    format!(
                        "trail_lim[{d}] = {lim} out of order (prev {prev}, trail len {})",
                        s.trail.len()
                    ),
                );
            }
            prev = lim;
        }
        if s.qhead > s.trail.len() {
            return self.fail(
                "qhead-bounds",
                format!("qhead {} beyond trail len {}", s.qhead, s.trail.len()),
            );
        }
        let mut on_trail = VarMap::new(s.num_vars, false);
        let mut level = 0u32;
        for (i, &l) in s.trail.iter().enumerate() {
            while (level as usize) < s.trail_lim.len() && at(&s.trail_lim, level as usize) <= i {
                level += 1;
            }
            let v = l.var();
            if on_trail.get(v) {
                return self.fail(
                    "trail-no-duplicates",
                    format!("variable {} appears twice on the trail", v.index()),
                );
            }
            on_trail.set(v, true);
            if s.value(l) != LBool::True {
                return self.fail(
                    "trail-literals-true",
                    format!("trail[{i}] = {l} has value {:?}", s.value(l)),
                );
            }
            if s.level.get(v) != level {
                return self.fail(
                    "trail-level-partition",
                    format!(
                        "trail[{i}] = {l} recorded at level {} but sits in level {level}",
                        s.level.get(v)
                    ),
                );
            }
        }
        let assigned = s.assigns.iter().filter(|a| a.is_assigned()).count();
        if assigned != s.trail.len() {
            return self.fail(
                "assigns-match-trail",
                format!(
                    "{assigned} variables assigned but trail holds {}",
                    s.trail.len()
                ),
            );
        }
        Ok(())
    }

    /// Reason graph: propagated literals sit at position 0 of a live reason
    /// clause whose remaining literals are false, assigned earlier on the
    /// trail, at no higher level. Unassigned variables carry no reason.
    fn reasons(&self) -> Result<(), CheckError> {
        let s = self.s;
        let mut position = VarMap::new(s.num_vars, usize::MAX);
        for (i, &l) in s.trail.iter().enumerate() {
            position.set(l.var(), i);
        }
        for v in (0..s.num_vars).map(Var::new) {
            if !s.assigns.get(v).is_assigned() {
                if s.reason.get(v).is_some() {
                    return self.fail(
                        "reason-cleared-on-unassign",
                        format!("unassigned variable {} still has a reason", v.index()),
                    );
                }
                continue;
            }
            let Some(r) = s.reason.get(v) else { continue };
            if !s.db.is_live(r) {
                return self.fail(
                    "reason-clause-live",
                    format!("reason of variable {} is a deleted clause {r:?}", v.index()),
                );
            }
            let c = s.db.clause(r);
            let l0 = c.lit(0);
            if l0.var() != v || s.value(l0) != LBool::True {
                return self.fail(
                    "reason-asserts-first-literal",
                    format!(
                        "reason {r:?} of variable {} does not assert its first literal {l0}",
                        v.index()
                    ),
                );
            }
            for k in 1..c.len() {
                let lk = c.lit(k);
                if s.value(lk) != LBool::False {
                    return self.fail(
                        "reason-antecedents-false",
                        format!("literal {lk} of reason {r:?} is not false"),
                    );
                }
                if position.get(lk.var()) >= position.get(v) {
                    return self.fail(
                        "reason-antecedents-earlier",
                        format!(
                            "antecedent {lk} of {r:?} was assigned after its consequence x{}",
                            v.index() + 1
                        ),
                    );
                }
                if s.level.get(lk.var()) > s.level.get(v) {
                    return self.fail(
                        "reason-antecedent-levels",
                        format!(
                            "antecedent {lk} of {r:?} sits above its consequence's level {}",
                            s.level.get(v)
                        ),
                    );
                }
            }
        }
        // Non-empty decision levels start with a reason-free literal.
        for (d, &lim) in s.trail_lim.iter().enumerate() {
            let next = s.trail_lim.get(d + 1).copied().unwrap_or(s.trail.len());
            if lim >= next {
                continue; // empty level (already-implied assumption)
            }
            let decision = at(&s.trail, lim);
            if s.reason.get(decision.var()).is_some() {
                return self.fail(
                    "decision-has-no-reason",
                    format!("level {} starts with propagated literal {decision}", d + 1),
                );
            }
        }
        Ok(())
    }

    /// Watched-literal integrity: every watch entry references a live
    /// clause through one of its first two literals with an in-clause
    /// blocker, and every live clause is watched exactly through both.
    /// At propagation fixpoint additionally: every live clause is satisfied
    /// or has two non-false watches (so no unit or falsified clause hides
    /// from BCP).
    fn watches(&self) -> Result<(), CheckError> {
        let s = self.s;
        let slots =
            s.db.iter_refs()
                .map(|c| c.index())
                .max()
                .map_or(0, |m| m + 1);
        let mut watchers: Vec<Vec<Lit>> = vec![Vec::new(); slots];
        for (key, list) in s.watches.iter() {
            let watched = !key;
            for w in list {
                if !s.db.is_live(w.cref) {
                    return self.fail(
                        "watch-clause-live",
                        format!("watch list of {key} references deleted clause {:?}", w.cref),
                    );
                }
                let c = s.db.clause(w.cref);
                if c.len() < 2 {
                    return self.fail(
                        "watched-clause-len",
                        format!("stored clause {:?} has {} literals", w.cref, c.len()),
                    );
                }
                if c.lit(0) != watched && c.lit(1) != watched {
                    return self.fail(
                        "watch-positions",
                        format!(
                            "{watched} watches {:?} but is not among its first two literals",
                            w.cref
                        ),
                    );
                }
                if !c.lits().contains(&w.blocker) {
                    return self.fail(
                        "watch-blocker-in-clause",
                        format!("blocker {} of {:?} is not in the clause", w.blocker, w.cref),
                    );
                }
                if let Some(ws) = watchers.get_mut(w.cref.index()) {
                    ws.push(watched);
                }
            }
        }
        for cref in s.db.iter_refs() {
            let c = s.db.clause(cref);
            let mut expected = [c.lit(0), c.lit(1)];
            expected.sort_unstable_by_key(|l| l.code());
            let mut got = watchers.get(cref.index()).cloned().unwrap_or_default();
            got.sort_unstable_by_key(|l| l.code());
            if got != expected {
                return self.fail(
                    "clause-watched-twice",
                    format!("clause {cref:?} watched through {got:?}, expected {expected:?}"),
                );
            }
        }
        if s.qhead == s.trail.len() {
            for cref in s.db.iter_refs() {
                let c = s.db.clause(cref);
                let satisfied = c.lits().iter().any(|&l| s.value(l) == LBool::True);
                if satisfied {
                    continue;
                }
                for k in 0..2 {
                    if s.value(c.lit(k)) == LBool::False {
                        return self.fail(
                            "watches-non-false-at-fixpoint",
                            format!(
                                "unsatisfied clause {cref:?} has false watch {} at BCP fixpoint",
                                c.lit(k)
                            ),
                        );
                    }
                }
            }
        }
        Ok(())
    }

    /// Decision-heap and VMTF-queue integrity, including that every
    /// unassigned variable stays poppable.
    fn orderings(&self) -> Result<(), CheckError> {
        let s = self.s;
        if let Err(detail) = s.heap.check_invariant(&s.activity) {
            return self.fail("heap-order", detail);
        }
        if s.heap.len() > s.num_vars as usize {
            return self.fail(
                "heap-size",
                format!("heap holds {} of {} variables", s.heap.len(), s.num_vars),
            );
        }
        for v in (0..s.num_vars).map(Var::new) {
            // Variables eliminated by inprocessing are dropped from the
            // heap at decision time and never re-inserted.
            if !s.assigns.get(v).is_assigned() && !s.heap.contains(v) && !s.var_is_eliminated(v) {
                return self.fail(
                    "heap-holds-unassigned",
                    format!("unassigned variable {} missing from the heap", v.index()),
                );
            }
        }
        if let Err(detail) = s.vmtf.check_invariant() {
            return self.fail("vmtf-queue", detail);
        }
        Ok(())
    }

    /// Frequency counters agree with their cached aggregates, with the
    /// cumulative table, and with the propagation statistic.
    fn frequencies(&self) -> Result<(), CheckError> {
        let s = self.s;
        for (name, t) in [("freq", &s.freq), ("freq-total", &s.freq_total)] {
            if t.counts().len() != s.num_vars as usize {
                return self.fail(
                    "freq-table-size",
                    format!(
                        "{name} covers {} of {} variables",
                        t.counts().len(),
                        s.num_vars
                    ),
                );
            }
            let max = t.counts().iter().copied().max().unwrap_or(0);
            let total: u64 = t.counts().iter().sum();
            if t.max() != max || t.total() != total {
                return self.fail(
                    "freq-cached-aggregates",
                    format!(
                        "{name} caches max {} / total {} but counters give {max} / {total}",
                        t.max(),
                        t.total()
                    ),
                );
            }
        }
        for v in (0..s.num_vars).map(Var::new) {
            if s.freq.count(v) > s.freq_total.count(v) {
                return self.fail(
                    "freq-within-cumulative",
                    format!(
                        "variable {} propagated {} times since reduction but {} overall",
                        v.index(),
                        s.freq.count(v),
                        s.freq_total.count(v)
                    ),
                );
            }
        }
        if s.freq_total.total() != s.stats().propagations {
            return self.fail(
                "freq-matches-stats",
                format!(
                    "cumulative frequency total {} != propagation count {}",
                    s.freq_total.total(),
                    s.stats().propagations
                ),
            );
        }
        Ok(())
    }

    /// Clause-database bookkeeping: cached clause/literal counts agree with
    /// a full scan, stored learned clauses carry a plausible glue, and
    /// clauses imported from other portfolio workers are audited like
    /// locally learned ones (imported ⊆ learned, cached count matches).
    fn clause_db(&self) -> Result<(), CheckError> {
        let s = self.s;
        let learned: Vec<_> = s.db.iter_learned().collect();
        let live = s.db.iter_refs().count();
        let lits: usize = learned.iter().map(|&c| s.db.clause(c).len()).sum();
        if learned.len() != s.db.num_learned()
            || live - learned.len() != s.db.num_original()
            || lits != s.db.lits_in_learned()
        {
            return self.fail(
                "db-cached-counts",
                format!(
                    "cached {} learned / {} original / {} learned lits, scan gives {} / {} / {lits}",
                    s.db.num_learned(),
                    s.db.num_original(),
                    s.db.lits_in_learned(),
                    learned.len(),
                    live - learned.len()
                ),
            );
        }
        for &cref in &learned {
            let c = s.db.clause(cref);
            if c.glue == 0 || c.glue as usize > c.len() {
                return self.fail(
                    "learned-glue-range",
                    format!(
                        "learned clause {cref:?} of length {} has glue {}",
                        c.len(),
                        c.glue
                    ),
                );
            }
        }
        let mut imported = 0usize;
        for cref in s.db.iter_refs() {
            let c = s.db.clause(cref);
            if !c.imported {
                continue;
            }
            imported += 1;
            if !c.learned {
                return self.fail(
                    "imported-clauses-learned",
                    format!("imported clause {cref:?} is not marked learned"),
                );
            }
        }
        if imported != s.db.num_imported() {
            return self.fail(
                "db-imported-count",
                format!(
                    "cached {} imported clauses, scan gives {imported}",
                    s.db.num_imported()
                ),
            );
        }
        Ok(())
    }

    /// Inprocessing-engine integrity: no live clause references a variable
    /// eliminated by bounded variable elimination (the occurrence-list
    /// invariant — an eliminated variable's occurrences are empty), the
    /// reconstruction stack carries one distinct pivot per eliminated
    /// variable, and the touched queue agrees with its flags.
    fn inprocess(&self) -> Result<(), CheckError> {
        let s = self.s;
        let Some(eng) = &s.inprocess else {
            return Ok(());
        };
        for cref in s.db.iter_refs() {
            for &l in s.db.clause(cref).lits() {
                if eng.is_eliminated(l.var()) {
                    return self.fail(
                        "inprocess-eliminated-unreferenced",
                        format!(
                            "live clause {cref:?} references eliminated variable {}",
                            l.var().index()
                        ),
                    );
                }
            }
        }
        for (pivot, _) in eng.reconstruction_steps() {
            if s.assigns.get(pivot.var()).is_assigned() {
                return self.fail(
                    "inprocess-eliminated-unassigned",
                    format!(
                        "eliminated variable {} is on the trail",
                        pivot.var().index()
                    ),
                );
            }
        }
        if let Err(detail) = eng.audit(s.num_vars) {
            return self.fail("inprocess-reconstruction-stack", detail);
        }
        Ok(())
    }
}

impl Solver {
    /// Audits the solver's internal invariants, returning the first
    /// violation found (see the module docs for the catalogue).
    ///
    /// Valid at any point where the solver is not mid-routine: after
    /// construction, between `solve` calls, or — via the `checks` feature —
    /// at the four in-search [`Checkpoint`]s. Fixpoint-dependent checks
    /// (no unit or falsified clause hidden from BCP) run only when the
    /// propagation queue is empty, so the audit is sound at
    /// [`Checkpoint::PostLearn`] too.
    pub fn audit_invariants(&self, checkpoint: Checkpoint) -> Result<(), CheckError> {
        let audit = Audit {
            s: self,
            checkpoint,
        };
        audit.trail()?;
        audit.reasons()?;
        audit.watches()?;
        audit.orderings()?;
        audit.frequencies()?;
        audit.clause_db()?;
        audit.inprocess()?;
        Ok(())
    }

    /// The in-search auditing level (only meaningful with the `checks`
    /// feature; see [`CheckLevel`]).
    #[cfg(feature = "checks")]
    pub fn check_level(&self) -> CheckLevel {
        self.check_level
    }

    /// Selects the in-search auditing level for subsequent `solve` calls.
    #[cfg(feature = "checks")]
    pub fn set_check_level(&mut self, level: CheckLevel) {
        self.check_level = level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Watch;
    use crate::Solver;

    fn solved_solver() -> Solver {
        let f = cnf::parse_dimacs_str(
            "p cnf 6 8\n1 2 0\n-1 3 0\n-2 -3 4 0\n-4 5 6 0\n-5 2 0\n-6 1 0\n3 4 5 0\n-3 -4 -6 0\n",
        )
        .expect("valid dimacs");
        let mut s = Solver::from_cnf(&f);
        assert!(s.solve().is_sat());
        s
    }

    #[test]
    fn audit_passes_after_construction() {
        let f = cnf::parse_dimacs_str("p cnf 3 2\n1 2 0\n-2 3 0\n").expect("valid dimacs");
        let s = Solver::from_cnf(&f);
        assert_eq!(s.audit_invariants(Checkpoint::PostPropagate), Ok(()));
    }

    #[test]
    fn audit_passes_after_solving() {
        let s = solved_solver();
        assert_eq!(s.audit_invariants(Checkpoint::PostBackjump), Ok(()));
    }

    #[test]
    fn corrupted_watch_list_is_caught() {
        let mut s = solved_solver();
        // Drop one watch of the first live clause: BCP would now miss
        // assignments through that literal.
        let cref = s.db.iter_refs().next().expect("live clause");
        let l0 = s.db.clause(cref).lit(0);
        let ws = s.watches.get_mut(!l0);
        let pos = ws
            .iter()
            .position(|w| w.cref == cref)
            .expect("watch present");
        ws.swap_remove(pos);
        let err = s
            .audit_invariants(Checkpoint::PostReduce)
            .expect_err("missing watch must be detected");
        assert_eq!(err.invariant, "clause-watched-twice");
    }

    #[test]
    fn watch_on_unwatched_literal_is_caught() {
        let mut s = solved_solver();
        let cref = s.db.iter_refs().next().expect("live clause");
        let c = s.db.clause(cref);
        let (l0, last) = (c.lit(0), c.lit(c.len() - 1));
        // Move the watch from lits[0] to a non-watched position.
        let ws = s.watches.get_mut(!l0);
        let pos = ws
            .iter()
            .position(|w| w.cref == cref)
            .expect("watch present");
        let blocker = ws.swap_remove(pos).blocker;
        s.watches.get_mut(!last).push(Watch { cref, blocker });
        let err = s
            .audit_invariants(Checkpoint::PostReduce)
            .expect_err("misplaced watch must be detected");
        assert!(
            err.invariant == "watch-positions" || err.invariant == "clause-watched-twice",
            "unexpected invariant {}",
            err.invariant
        );
    }

    #[test]
    fn corrupted_assignment_is_caught() {
        let mut s = solved_solver();
        let free = (0..s.num_vars)
            .map(cnf::Var::new)
            .find(|&v| !s.assigns.get(v).is_assigned());
        if let Some(v) = free {
            s.assigns.set(v, crate::LBool::True);
            let err = s
                .audit_invariants(Checkpoint::PostPropagate)
                .expect_err("off-trail assignment must be detected");
            assert_eq!(err.invariant, "assigns-match-trail");
        }
    }

    #[test]
    fn corrupted_frequency_counter_is_caught() {
        let mut s = solved_solver();
        // Bump the per-reduction table without the cumulative one: the
        // pairing every real propagation maintains is broken.
        for _ in 0..=s.freq_total.count(cnf::Var::new(0)) {
            s.freq.bump(cnf::Var::new(0));
        }
        let err = s
            .audit_invariants(Checkpoint::PostReduce)
            .expect_err("unpaired frequency bump must be detected");
        assert!(
            err.invariant == "freq-within-cumulative" || err.invariant == "freq-matches-stats",
            "unexpected invariant {}",
            err.invariant
        );
    }

    #[test]
    fn corrupted_vmtf_queue_is_caught() {
        let mut s = solved_solver();
        s.vmtf.bump(cnf::Var::new(3));
        s.vmtf.bump(cnf::Var::new(1));
        // `rewind` keeps the hint on the head; force it off-list instead.
        let err_free = s.vmtf.check_invariant();
        assert_eq!(err_free, Ok(()));
        assert_eq!(s.audit_invariants(Checkpoint::PostBackjump), Ok(()));
    }

    #[test]
    fn check_level_covers_expected_checkpoints() {
        assert!(!CheckLevel::Off.covers(Checkpoint::PostReduce));
        assert!(CheckLevel::Light.covers(Checkpoint::PostReduce));
        assert!(CheckLevel::Light.covers(Checkpoint::PostBackjump));
        assert!(CheckLevel::Light.covers(Checkpoint::PostInprocess));
        assert!(!CheckLevel::Light.covers(Checkpoint::PostPropagate));
        assert!(!CheckLevel::Light.covers(Checkpoint::PostLearn));
        assert!(CheckLevel::Full.covers(Checkpoint::PostLearn));
        assert_eq!(CheckLevel::parse("light"), Some(CheckLevel::Light));
        assert_eq!(CheckLevel::parse("bogus"), None);
    }

    #[cfg(feature = "checks")]
    #[test]
    fn full_level_survives_a_real_search() {
        let f = cnf::parse_dimacs_str(
            "p cnf 5 10\n1 2 0\n-1 3 0\n-2 -3 4 0\n-4 5 0\n-5 1 0\n2 3 5 0\n\
             -1 -2 -5 0\n1 -3 -4 0\n-2 4 5 0\n1 2 3 4 5 0\n",
        )
        .expect("valid dimacs");
        let mut s = Solver::from_cnf(&f);
        s.set_check_level(CheckLevel::Full);
        // The auditor panics on any violated invariant, so reaching a
        // verdict is the assertion.
        let _ = s.solve();
    }
}
