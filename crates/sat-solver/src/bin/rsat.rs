//! `rsat` — a DIMACS command-line front end for the CDCL solver.
//!
//! ```text
//! rsat FILE.cnf [--policy default|prop-freq|activity] [--alpha F]
//!               [--conflicts N] [--propagations N] [--proof FILE.drat]
//!               [--timeout SECS] [--mem-limit MB]
//!               [--check-proof] [--check[=off|light|full]] [--preprocess]
//!               [--no-stats] [--stats-json FILE.jsonl] [--progress SECS]
//!               [--portfolio[=N]] [--seed N] [--fault-plan PLAN]
//!               [--trace-out FILE.json]
//!               [--metrics-out FILE.jsonl] [--metrics-interval SECS]
//! ```
//!
//! `--timeout` and `--mem-limit` are *cooperative* resource ceilings
//! checked at search boundaries: exhausting one yields `s UNKNOWN` (exit
//! 0) with intact statistics and a `c stop:` line naming the cause, never
//! a crash. `--fault-plan` (or the `FAULT_PLAN` environment variable)
//! arms deterministic fault injection when the binary is built with the
//! `faults` feature; without it the flag is a polite error.
//!
//! `--portfolio[=N]` races N diversified solvers (defaulting to the
//! machine's parallelism) with a shared clause pool and returns the first
//! verdict; `--policy` and `--seed` set worker 0's configuration, UNSAT
//! answers carry a shared DRAT log, and `--stats-json` then writes one
//! record per worker.
//!
//! A `c`-comment statistics block is printed by default (`--no-stats`
//! silences it). `--stats-json` streams structured telemetry events
//! (solve start/end, reduction snapshots, progress heartbeats) as JSON
//! Lines; `--progress` prints heartbeats every SECS seconds — to the
//! JSONL stream when one is open, as `c progress` comments otherwise.
//!
//! `--trace-out` records span traces into per-thread ring buffers (one
//! lane per portfolio worker) and writes a Chrome trace-event JSON file at
//! exit, loadable in Perfetto / `chrome://tracing` and summarized by the
//! `trace-report` tool. It requires a build with the `trace` feature;
//! without it the flag is a polite error.
//!
//! `--metrics-out` arms the live metrics registry (`telemetry::metrics`)
//! and streams periodic `metrics_snapshot` JSONL lines — propagation and
//! conflict rates, pool import/export traffic, the live memory estimate —
//! every `--metrics-interval` seconds (default 0.5). It requires a build
//! with the `metrics` feature; without it the flag is a polite error. On a
//! metrics build, `--progress` additionally upgrades from whole-run
//! average heartbeats to live instantaneous rates with a budget-based ETA,
//! driven by the same snapshots.
//!
//! Exit codes follow the SAT-competition convention: 10 = SAT,
//! 20 = UNSAT, 0 = unknown/indeterminate, 1 = usage or I/O error.

use sat_solver::{
    check_proof, preprocess, solve_portfolio, Budget, CheckLevel, Checkpoint, PolicyKind,
    PortfolioConfig, PreprocessConfig, Preprocessed, SolveResult, Solver, SolverConfig,
    SolverTelemetry,
};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::time::Duration;
use telemetry::json::ToJson;
use telemetry::{Event, JsonlSink, Phase, Sink};

struct Options {
    file: String,
    policy: PolicyKind,
    budget: Budget,
    proof_path: Option<String>,
    check: bool,
    check_level: Option<CheckLevel>,
    stats: bool,
    preprocess: bool,
    /// In-search inprocessing rounds (subsumption, bounded variable
    /// elimination, vivification): `Some(interval)` runs a round every
    /// `interval` restarts.
    inprocess: Option<u64>,
    stats_json: Option<String>,
    progress: Option<f64>,
    portfolio: Option<usize>,
    seed: u64,
    /// Wall-clock ceiling, applied to the budget right before solving
    /// starts (so parse time does not eat into it).
    timeout: Option<Duration>,
    /// Approximate memory ceiling in MiB.
    mem_limit_mb: Option<u64>,
    fault_plan: Option<String>,
    /// Chrome trace-event output path (requires the `trace` feature).
    trace_out: Option<String>,
    /// Metrics-snapshot JSONL output path (requires the `metrics` feature).
    metrics_out: Option<String>,
    /// Sampling interval for `--metrics-out`, in seconds.
    metrics_interval: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: rsat FILE.cnf [--policy default|prop-freq|activity] [--alpha F]\n\
         \x20             [--conflicts N] [--propagations N] [--proof FILE.drat]\n\
         \x20             [--timeout SECS] [--mem-limit MB]\n\
         \x20             [--check-proof] [--check[=off|light|full]] [--preprocess]\n\
         \x20             [--inprocess[=EVERY]]\n\
         \x20             [--no-stats] [--stats-json FILE.jsonl] [--progress SECS]\n\
         \x20             [--portfolio[=N]] [--seed N] [--fault-plan PLAN]\n\
         \x20             [--trace-out FILE.json]\n\
         \x20             [--metrics-out FILE.jsonl] [--metrics-interval SECS]"
    );
    std::process::exit(1)
}

/// Prints a model as DIMACS `v` lines (72-column wrapped).
fn print_model(model: &[bool]) {
    let mut line = String::from("v");
    for (i, &v) in model.iter().enumerate() {
        line.push(' ');
        if !v {
            line.push('-');
        }
        line.push_str(&(i + 1).to_string());
        if line.len() > 72 {
            println!("{line}");
            line = String::from("v");
        }
    }
    println!("{line} 0");
}

/// Streams progress heartbeats to stdout as DIMACS `c` comments; used
/// when `--progress` is given without `--stats-json`.
struct CommentSink;

impl Sink for CommentSink {
    fn emit(&mut self, event: &Event) {
        if let Event::Progress {
            conflicts,
            propagations,
            learned,
            elapsed_s,
            conflicts_per_sec,
            ..
        } = event
        {
            // sinks must never take the solver down — a closed stdout
            // (e.g. piped into `head`) is dropped, not propagated
            let mut out = std::io::stdout();
            let _ = writeln!(
                out,
                "c progress {elapsed_s:.1}s | {conflicts} conflicts ({conflicts_per_sec:.0}/s) \
                 | {propagations} propagations | {learned} learned"
            );
            // Heartbeats exist to be watched live: flush each line so a
            // piped/redirected stream sees it now, not in 8 KiB bursts.
            let _ = out.flush();
        }
    }
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut file = None;
    let mut policy = PolicyKind::Default;
    let mut alpha: Option<f64> = None;
    let mut budget = Budget::unlimited();
    let mut proof_path = None;
    let mut check = false;
    let mut check_level = None;
    let mut stats = true;
    let mut preprocess = false;
    let mut inprocess = None;
    let mut stats_json = None;
    let mut progress = None;
    let mut portfolio = None;
    let mut seed = 0u64;
    let mut timeout = None;
    let mut mem_limit_mb = None;
    let mut fault_plan = None;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut metrics_interval = 0.5f64;
    let parse_timeout = |v: Option<String>| -> Option<Duration> {
        let secs: f64 = v.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
        if secs >= 0.0 && secs.is_finite() {
            Some(Duration::from_secs_f64(secs))
        } else {
            usage()
        }
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--policy" => {
                policy = match args.next().as_deref() {
                    Some("default") => PolicyKind::Default,
                    Some("prop-freq") => PolicyKind::PropFreq,
                    Some("activity") => PolicyKind::Activity,
                    _ => usage(),
                }
            }
            "--alpha" => alpha = args.next().and_then(|v| v.parse().ok()).or_else(|| usage()),
            "--conflicts" => {
                budget.max_conflicts = args.next().and_then(|v| v.parse().ok()).or_else(|| usage())
            }
            "--propagations" => {
                budget.max_propagations =
                    args.next().and_then(|v| v.parse().ok()).or_else(|| usage())
            }
            "--timeout" => timeout = parse_timeout(args.next()),
            t if t.starts_with("--timeout=") => {
                timeout = parse_timeout(Some(t["--timeout=".len()..].to_string()));
            }
            "--mem-limit" => {
                mem_limit_mb = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            m if m.starts_with("--mem-limit=") => {
                mem_limit_mb = Some(
                    m["--mem-limit=".len()..]
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--fault-plan" => fault_plan = Some(args.next().unwrap_or_else(|| usage())),
            p if p.starts_with("--fault-plan=") => {
                fault_plan = Some(p["--fault-plan=".len()..].to_string());
            }
            "--trace-out" => trace_out = Some(args.next().unwrap_or_else(|| usage())),
            t if t.starts_with("--trace-out=") => {
                trace_out = Some(t["--trace-out=".len()..].to_string());
            }
            "--metrics-out" => metrics_out = Some(args.next().unwrap_or_else(|| usage())),
            m if m.starts_with("--metrics-out=") => {
                metrics_out = Some(m["--metrics-out=".len()..].to_string());
            }
            "--metrics-interval" => {
                let secs: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if secs > 0.0 && secs.is_finite() {
                    metrics_interval = secs;
                } else {
                    usage()
                }
            }
            m if m.starts_with("--metrics-interval=") => {
                let secs: f64 = m["--metrics-interval=".len()..]
                    .parse()
                    .unwrap_or_else(|_| usage());
                if secs > 0.0 && secs.is_finite() {
                    metrics_interval = secs;
                } else {
                    usage()
                }
            }
            "--proof" => proof_path = Some(args.next().unwrap_or_else(|| usage())),
            "--check-proof" => check = true,
            "--check" => check_level = Some(CheckLevel::default()),
            level if level.starts_with("--check=") => {
                check_level =
                    Some(CheckLevel::parse(&level["--check=".len()..]).unwrap_or_else(|| usage()));
            }
            "--stats" => stats = true, // default; kept for compatibility
            "--no-stats" => stats = false,
            "--preprocess" => preprocess = true,
            // `--inprocess` uses the config default interval;
            // `--inprocess=N` runs a round every N restarts.
            "--inprocess" => inprocess = Some(SolverConfig::default().inprocess_interval),
            n if n.starts_with("--inprocess=") => {
                let every: u64 = n["--inprocess=".len()..]
                    .parse()
                    .unwrap_or_else(|_| usage());
                if every == 0 {
                    usage()
                }
                inprocess = Some(every);
            }
            "--stats-json" => stats_json = Some(args.next().unwrap_or_else(|| usage())),
            "--progress" => {
                let secs: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if secs > 0.0 && secs.is_finite() {
                    progress = Some(secs);
                } else {
                    usage()
                }
            }
            "--portfolio" => {
                portfolio = Some(
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(4),
                )
            }
            n if n.starts_with("--portfolio=") => {
                let workers: usize = n["--portfolio=".len()..]
                    .parse()
                    .unwrap_or_else(|_| usage());
                if workers == 0 {
                    usage()
                }
                portfolio = Some(workers);
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            _ => usage(),
        }
    }
    if let Some(a) = alpha {
        policy = PolicyKind::PropFreqAlpha(a);
    }
    Options {
        file: file.unwrap_or_else(|| usage()),
        policy,
        budget,
        proof_path,
        check,
        check_level,
        stats,
        preprocess,
        inprocess,
        stats_json,
        progress,
        portfolio,
        seed,
        timeout,
        mem_limit_mb,
        fault_plan,
        trace_out,
        metrics_out,
        metrics_interval,
    }
}

/// Returns `opts.budget` with the wall-clock/memory ceilings applied.
/// Called right before solving so the deadline excludes parse time.
fn armed_budget(opts: &Options) -> Budget {
    let mut budget = opts.budget;
    if let Some(timeout) = opts.timeout {
        budget = budget.with_deadline_in(timeout);
    }
    if let Some(mb) = opts.mem_limit_mb {
        budget = budget.with_memory_limit(mb.saturating_mul(1024 * 1024));
    }
    budget
}

/// Arms fault injection from `--fault-plan` and the `FAULT_PLAN`
/// environment variable. A plan on a binary built without the `faults`
/// feature is a usage error, not a silent no-op: a chaos harness that
/// thinks it is injecting faults but is not would report vacuous passes.
fn arm_fault_plan(opts: &Options) -> Result<(), String> {
    #[cfg(feature = "faults")]
    {
        match faults::install_from_env() {
            Ok(true) => println!("c fault plan armed from ${}", faults::ENV_VAR),
            Ok(false) => {}
            Err(e) => return Err(format!("bad ${}: {e}", faults::ENV_VAR)),
        }
        if let Some(plan) = &opts.fault_plan {
            let plan = plan
                .parse::<faults::FaultPlan>()
                .map_err(|e| format!("bad --fault-plan: {e}"))?;
            faults::install_global(plan);
            println!("c fault plan armed from --fault-plan");
        }
        Ok(())
    }
    #[cfg(not(feature = "faults"))]
    {
        if opts.fault_plan.is_some() || std::env::var_os("FAULT_PLAN").is_some() {
            return Err(String::from(
                "fault injection requested, but this rsat was built without \
                 the `faults` feature (rebuild with `--features faults`)",
            ));
        }
        Ok(())
    }
}

/// Arms span tracing when `--trace-out` is given. Requesting a trace from
/// a binary built without the `trace` feature is a usage error, not a
/// silently empty file: a benchmark harness that thinks it is recording
/// but is not would draw conclusions from a blank trace.
fn arm_trace(opts: &Options) -> Result<(), String> {
    if opts.trace_out.is_none() {
        return Ok(());
    }
    if !telemetry::trace::enabled() {
        return Err(String::from(
            "--trace-out requested, but this rsat was built without the \
             `trace` feature (rebuild with `--features trace`)",
        ));
    }
    telemetry::trace::arm(0);
    Ok(())
}

/// Drains every trace ring buffer and writes the Chrome trace-event file.
/// Called right after solving, while worker lanes are freshly flushed.
fn write_trace(opts: &Options) -> Result<(), String> {
    let Some(path) = &opts.trace_out else {
        return Ok(());
    };
    telemetry::trace::disarm();
    let logs = telemetry::trace::drain();
    let doc = telemetry::trace::chrome_trace(&logs);
    let file = File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = BufWriter::new(file);
    w.write_all(doc.to_string().as_bytes())
        .and_then(|()| w.write_all(b"\n"))
        .and_then(|()| w.flush())
        .map_err(|e| format!("{path}: {e}"))?;
    println!("c trace written to {path} ({} lanes)", logs.len());
    Ok(())
}

/// Arms the metrics registry and spawns the snapshot sampler when
/// `--metrics-out` asks for a JSONL time series and/or `--progress` can be
/// upgraded to live rates (a metrics build). `--metrics-out` on a binary
/// built without the `metrics` feature is a usage error, not a silently
/// empty file. Returns `None` when nothing needs sampling.
fn start_metrics(opts: &Options) -> Result<Option<telemetry::metrics::Sampler>, String> {
    let wants_file = opts.metrics_out.is_some();
    // Portfolio mode rejects --progress before this runs, so live-progress
    // sampling only ever drives the single-solver path.
    let live_progress = opts.progress.is_some() && telemetry::metrics::enabled();
    if !wants_file && !live_progress {
        return Ok(None);
    }
    if wants_file && !telemetry::metrics::enabled() {
        return Err(String::from(
            "--metrics-out requested, but this rsat was built without the \
             `metrics` feature (rebuild with `--features metrics`)",
        ));
    }
    telemetry::metrics::arm();
    let mut interval = f64::INFINITY;
    let writer: Option<Box<dyn Write + Send>> = match &opts.metrics_out {
        Some(path) => {
            interval = interval.min(opts.metrics_interval);
            let file = File::create(path).map_err(|e| format!("{path}: {e}"))?;
            Some(Box::new(BufWriter::new(file)))
        }
        None => None,
    };
    let observer: Option<telemetry::metrics::SnapshotObserver> = match opts.progress {
        Some(secs) if live_progress => {
            interval = interval.min(secs);
            Some(progress_observer(opts))
        }
        _ => None,
    };
    Ok(Some(telemetry::metrics::Sampler::spawn(
        Duration::from_secs_f64(interval),
        writer,
        observer,
    )))
}

/// Builds the live `--progress` renderer: each snapshot becomes one
/// `c progress` line with instantaneous rates and, when the run has a
/// conflict/propagation budget or a timeout, the tightest ETA they imply.
fn progress_observer(opts: &Options) -> telemetry::metrics::SnapshotObserver {
    use std::fmt::Write as _;
    use telemetry::metrics::{Counter, Gauge, MetricsSnapshot};
    let max_conflicts = opts.budget.max_conflicts;
    let max_propagations = opts.budget.max_propagations;
    let timeout_s = opts.timeout.map(|t| t.as_secs_f64());
    Box::new(
        move |snap: &MetricsSnapshot, prev: Option<&MetricsSnapshot>| {
            // Instantaneous rate when a previous snapshot exists, whole-run
            // average on the very first tick.
            let rate = |c: Counter| -> f64 {
                prev.and_then(|p| snap.rate_since(p, c)).unwrap_or_else(|| {
                    if snap.elapsed_s > 0.0 {
                        snap.counter(c) as f64 / snap.elapsed_s
                    } else {
                        0.0
                    }
                })
            };
            let conflicts = snap.counter(Counter::Conflicts);
            let props = snap.counter(Counter::Propagations);
            let conflict_rate = rate(Counter::Conflicts);
            let prop_rate = rate(Counter::Propagations);
            let mut line = format!(
                "c progress {:.1}s | {conflicts} conflicts ({conflict_rate:.0}/s) \
             | {props} propagations ({prop_rate:.0}/s) | {} learned",
                snap.elapsed_s,
                snap.counter(Counter::LearnedClauses),
            );
            if let Some(bytes) = snap.gauge(Gauge::MemoryBytes) {
                let _ = write!(line, " | mem {:.1} MiB", bytes / (1024.0 * 1024.0));
            }
            // ETA: the tightest of the remaining-budget projections. A rate of
            // zero gives no projection (the budget may never bind).
            let mut eta = f64::INFINITY;
            if let (Some(max), true) = (max_conflicts, conflict_rate > 0.0) {
                eta = eta.min(max.saturating_sub(conflicts) as f64 / conflict_rate);
            }
            if let (Some(max), true) = (max_propagations, prop_rate > 0.0) {
                eta = eta.min(max.saturating_sub(props) as f64 / prop_rate);
            }
            if let Some(t) = timeout_s {
                eta = eta.min((t - snap.elapsed_s).max(0.0));
            }
            if eta.is_finite() {
                let _ = write!(line, " | eta {eta:.0}s");
            }
            // Same resilience contract as CommentSink: a closed stdout is
            // dropped, not propagated; flush so the line is watchable live.
            let mut out = std::io::stdout();
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        },
    )
}

/// Stops the sampler (one final snapshot), disarms the registry, and
/// reports where the series went. A failed metrics write is an I/O error
/// like a failed trace write, not a silent truncation.
fn finish_metrics(
    sampler: Option<telemetry::metrics::Sampler>,
    opts: &Options,
) -> Result<(), String> {
    let Some(sampler) = sampler else {
        return Ok(());
    };
    let report = sampler.stop();
    telemetry::metrics::disarm();
    if let Some(path) = &opts.metrics_out {
        if let Some(e) = report.io_error {
            return Err(format!("{path}: {e}"));
        }
        println!(
            "c metrics written to {path} ({} snapshots)",
            report.snapshots
        );
    }
    Ok(())
}

/// Opens and parses the DIMACS input. The `dimacs-io` fault point swaps
/// the file for one that fails mid-stream, exercising the same graceful
/// diagnostic path a real disk/network failure would take.
fn read_formula(path: &str) -> Result<cnf::Cnf, String> {
    let file = File::open(path).map_err(|e| e.to_string())?;
    #[cfg(feature = "faults")]
    if let Some(cfg) = faults::fire(faults::site::DIMACS_IO, &[]) {
        let reader = BufReader::new(faults::FailingReader::new(file, cfg.get_u64("after", 64)));
        return cnf::parse_dimacs(reader).map_err(|e| e.to_string());
    }
    cnf::parse_dimacs(BufReader::new(file)).map_err(|e| e.to_string())
}

/// Writes the DRAT proof to an opened file. The `drat-truncate` fault
/// point cuts the byte stream short — a full disk or severed pipe —
/// which must surface as an I/O error, never a silently short proof.
fn write_drat_file(proof: &sat_solver::ProofLogger, file: File) -> std::io::Result<()> {
    #[cfg(feature = "faults")]
    if let Some(cfg) = faults::fire(faults::site::DRAT_TRUNCATE, &[]) {
        let mut w = BufWriter::new(faults::TruncatingWriter::new(
            file,
            cfg.get_u64("after", 64),
        ));
        return proof.write_drat(&mut w).and_then(|()| w.flush());
    }
    let mut w = BufWriter::new(file);
    proof.write_drat(&mut w).and_then(|()| w.flush())
}

fn main() -> ExitCode {
    let opts = parse_args();
    if let Err(e) = arm_fault_plan(&opts) {
        eprintln!("rsat: {e}");
        return ExitCode::from(1);
    }
    if let Err(e) = arm_trace(&opts) {
        eprintln!("rsat: {e}");
        return ExitCode::from(1);
    }
    let sampler = match start_metrics(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rsat: {e}");
            return ExitCode::from(1);
        }
    };
    let formula = match read_formula(&opts.file) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("rsat: {}: {e}", opts.file);
            return ExitCode::from(1);
        }
    };
    println!(
        "c rsat | {} vars, {} clauses | policy {}",
        formula.num_vars(),
        formula.num_clauses(),
        opts.policy
    );

    if let Some(workers) = opts.portfolio {
        if opts.preprocess || opts.progress.is_some() {
            eprintln!("rsat: --portfolio cannot be combined with --preprocess or --progress");
            return ExitCode::from(1);
        }
        let code = run_portfolio(&formula, &opts, workers);
        if let Err(e) = finish_metrics(sampler, &opts) {
            eprintln!("rsat: {e}");
            return ExitCode::from(1);
        }
        return code;
    }

    // Optional SatELite-style simplification. Proof logging covers only the
    // search phase, so --preprocess and --proof are mutually exclusive.
    // `--check` subsumes `--check-proof`: in-search invariant auditing plus
    // UNSAT proof replay and an end-of-solve audit.
    let check_proof_on_unsat = opts.check || opts.check_level.is_some();

    let mut reconstruction = None;
    let mut search_formula = formula.clone();
    if opts.preprocess {
        if opts.proof_path.is_some() || check_proof_on_unsat {
            eprintln!("rsat: --preprocess cannot be combined with proof options");
            return ExitCode::from(1);
        }
        match preprocess(&formula, &PreprocessConfig::default()) {
            Preprocessed::Unsat => {
                println!("c preprocessing refuted the formula");
                println!("s UNSATISFIABLE");
                return ExitCode::from(20);
            }
            Preprocessed::Simplified {
                cnf,
                reconstruction: rec,
            } => {
                println!(
                    "c preprocessed to {} clauses ({} vars eliminated, {} fixed)",
                    cnf.num_clauses(),
                    rec.num_eliminated(),
                    rec.num_fixed()
                );
                search_formula = cnf;
                reconstruction = Some(rec);
            }
        }
    }

    let mut solver_config = SolverConfig::with_policy(opts.policy);
    if let Some(every) = opts.inprocess {
        solver_config.inprocess = true;
        solver_config.inprocess_interval = every;
        println!("c inprocessing enabled (rounds every {every} restarts)");
    }
    let mut solver = Solver::new(&search_formula, solver_config);
    if opts.proof_path.is_some() || check_proof_on_unsat {
        solver.enable_proof();
    }
    if let Some(level) = opts.check_level {
        #[cfg(feature = "checks")]
        {
            solver.set_check_level(level);
            println!("c invariant checks: {level:?} (in-search checkpoints active)");
        }
        #[cfg(not(feature = "checks"))]
        {
            let _ = level;
            println!(
                "c note: built without the `checks` feature; in-search checkpoints \
                 are disabled (end-of-solve audit and proof replay still run)"
            );
        }
    }

    if opts.stats_json.is_some() || opts.progress.is_some() {
        let instance = std::path::Path::new(&opts.file)
            .file_name()
            .map_or_else(|| opts.file.clone(), |n| n.to_string_lossy().into_owned());
        let mut tel = SolverTelemetry::new(instance);
        if let Some(path) = &opts.stats_json {
            match File::create(path) {
                Ok(f) => tel = tel.with_sink(Box::new(JsonlSink::new(BufWriter::new(f)))),
                Err(e) => {
                    eprintln!("rsat: {path}: {e}");
                    return ExitCode::from(1);
                }
            }
        } else {
            tel = tel.with_sink(Box::new(CommentSink));
        }
        if let Some(secs) = opts.progress {
            // On a metrics build the sampler renders the live `c progress`
            // lines; conflict-boundary heartbeats are then only kept when a
            // JSONL stream wants the Progress events.
            if !telemetry::metrics::enabled() || opts.stats_json.is_some() {
                tel = tel.with_progress(Duration::from_secs_f64(secs));
            }
        }
        solver.set_telemetry(tel);
    }

    let result = {
        let _solve_span = telemetry::trace::span("solve");
        solver.solve_with_budget(armed_budget(&opts))
    };
    if let Err(e) = write_trace(&opts) {
        eprintln!("rsat: {e}");
        return ExitCode::from(1);
    }
    if let Err(e) = finish_metrics(sampler, &opts) {
        eprintln!("rsat: {e}");
        return ExitCode::from(1);
    }

    if opts.check_level.is_some() {
        if let Err(e) = solver.audit_invariants(Checkpoint::PostPropagate) {
            eprintln!("rsat: end-of-solve invariant audit FAILED: {e}");
            return ExitCode::from(1);
        }
        println!("c end-of-solve invariant audit passed");
    }

    if opts.stats {
        let s = solver.stats();
        println!(
            "c decisions {} | propagations {} | conflicts {} | restarts {} | \
             reductions {} | learned {} | deleted {}",
            s.decisions,
            s.propagations,
            s.conflicts,
            s.restarts,
            s.reductions,
            s.learned_clauses,
            s.deleted_clauses
        );
        if let Some(ip) = solver.inprocess_stats() {
            println!(
                "c inprocess rounds {} (skipped {}, aborted {}) | subsumed {} | \
                 strengthened {} | eliminated {} | vivified {}",
                ip.rounds,
                ip.skipped_rounds,
                ip.aborted_rounds,
                ip.subsumed,
                ip.strengthened,
                ip.eliminated_vars,
                ip.vivified
            );
        }
    }

    if let Some(tel) = solver.take_telemetry() {
        if opts.stats {
            for phase in [
                Phase::Propagate,
                Phase::Analyze,
                Phase::Minimize,
                Phase::Reduce,
                Phase::Restart,
                Phase::Inprocess,
            ] {
                let calls = tel.phases().calls(phase);
                if calls > 0 {
                    println!(
                        "c time {:<9} {:>9.4}s ({calls} calls)",
                        phase.name(),
                        tel.phases().elapsed(phase).as_secs_f64()
                    );
                }
            }
            println!("c peak learned clauses {}", tel.peak_learned_clauses());
        }
        drop(tel.into_record()); // flushes the JSONL stream
        if let Some(path) = &opts.stats_json {
            println!("c telemetry written to {path}");
        }
    }

    let code = match &result {
        SolveResult::Sat(model) => {
            let mut model = model.clone();
            if let Some(rec) = &reconstruction {
                model.resize(formula.num_vars() as usize, false);
                rec.extend_model(&mut model);
            }
            let model = &model;
            if cnf::verify_model(&formula, model).is_err() {
                eprintln!("rsat: internal error: model failed verification");
                return ExitCode::from(1);
            }
            println!("s SATISFIABLE");
            print_model(model);
            10
        }
        SolveResult::Unsat => {
            println!("s UNSATISFIABLE");
            20
        }
        SolveResult::Unknown => {
            if let Some(cause) = solver.stop_cause() {
                println!("c stop: {}", cause.as_str());
            }
            println!("s UNKNOWN");
            0
        }
    };

    if let Some(proof) = solver.take_proof() {
        if let Some(path) = &opts.proof_path {
            match File::create(path) {
                Ok(f) => {
                    if write_drat_file(&proof, f).is_err() {
                        eprintln!("rsat: failed to write proof to {path}");
                        return ExitCode::from(1);
                    }
                    println!("c proof written to {path}");
                }
                Err(e) => {
                    eprintln!("rsat: {path}: {e}");
                    return ExitCode::from(1);
                }
            }
        }
        if check_proof_on_unsat && result.is_unsat() {
            match check_proof(&formula, &proof) {
                Ok(()) => println!("c proof VERIFIED by the built-in RUP checker"),
                Err(e) => {
                    eprintln!("rsat: proof check FAILED: {e}");
                    return ExitCode::from(1);
                }
            }
        }
    }
    ExitCode::from(code)
}

/// The `--portfolio[=N]` path: race N diversified workers with clause
/// sharing; the first verdict wins and is verified (model check or shared
/// DRAT replay) before anything is printed.
fn run_portfolio(formula: &cnf::Cnf, opts: &Options, workers: usize) -> ExitCode {
    let check_on_unsat = opts.check || opts.check_level.is_some();
    let mut base = SolverConfig::with_policy(opts.policy);
    base.seed = opts.seed;
    if let Some(every) = opts.inprocess {
        base.inprocess = true;
        base.inprocess_interval = every;
        println!("c inprocessing enabled in every worker (rounds every {every} restarts)");
    }
    let mut config = PortfolioConfig::new(workers);
    config.base = base;
    config.budget = armed_budget(opts);
    config.proof = opts.proof_path.is_some() || check_on_unsat;
    config.instance_id = std::path::Path::new(&opts.file)
        .file_name()
        .map_or_else(|| opts.file.clone(), |n| n.to_string_lossy().into_owned());
    if let Some(level) = opts.check_level {
        #[cfg(feature = "checks")]
        {
            config.configure = Some(std::sync::Arc::new(move |s: &mut Solver| {
                s.set_check_level(level)
            }));
            println!(
                "c invariant checks: {level:?} (in-search checkpoints active in every worker)"
            );
        }
        #[cfg(not(feature = "checks"))]
        {
            let _ = level;
            println!(
                "c note: built without the `checks` feature; in-search checkpoints \
                 are disabled (model verification and proof replay still run)"
            );
        }
    }
    println!(
        "c portfolio: {workers} workers | base policy {} | seed {} | export glue <= {}",
        opts.policy, opts.seed, config.export_glue
    );

    let solved = {
        // The coordinating thread gets its own span so the trace shows the
        // race envelope next to the per-worker lanes.
        let _portfolio_span = telemetry::trace::span("portfolio");
        solve_portfolio(formula, &config)
    };
    if let Err(e) = write_trace(opts) {
        eprintln!("rsat: {e}");
        return ExitCode::from(1);
    }
    let outcome = match solved {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("rsat: portfolio verification FAILED: {e}");
            return ExitCode::from(1);
        }
    };

    if opts.stats {
        for w in &outcome.workers {
            println!(
                "c worker {} | policy {} | seed {} | {} | conflicts {} | \
                 propagations {} | exported {} | imported {}",
                w.worker,
                w.policy,
                w.seed,
                w.verdict,
                w.stats.conflicts,
                w.stats.propagations,
                w.exported,
                w.imported
            );
        }
        let pool = outcome.pool;
        println!(
            "c pool | exported {} | imported {} | duplicate-dropped {} | capacity-dropped {} \
             | poisoned-dropped {} | quarantine-dropped {}",
            pool.exported,
            pool.imported,
            pool.dropped_duplicate,
            pool.dropped_capacity,
            pool.dropped_poisoned,
            pool.dropped_quarantined
        );
        if !outcome.crashed.is_empty() {
            println!(
                "c crashed workers: {:?} (race degraded to the survivors)",
                outcome.crashed
            );
        }
        match outcome.winner {
            Some(w) => println!("c winner: worker {w}"),
            None => println!("c no winner: every worker exhausted its budget"),
        }
    }

    if let Some(path) = &opts.stats_json {
        match File::create(path) {
            Ok(f) => {
                let mut w = BufWriter::new(f);
                let mut ok = true;
                for report in &outcome.workers {
                    if let Some(record) = &report.record {
                        ok &= writeln!(w, "{}", record.to_json()).is_ok();
                    }
                }
                ok &= w.flush().is_ok();
                if !ok {
                    eprintln!("rsat: failed to write worker records to {path}");
                    return ExitCode::from(1);
                }
                println!("c telemetry written to {path} (one record per worker)");
            }
            Err(e) => {
                eprintln!("rsat: {path}: {e}");
                return ExitCode::from(1);
            }
        }
    }

    if let Some(proof) = &outcome.proof {
        if let Some(path) = &opts.proof_path {
            match File::create(path) {
                Ok(f) => {
                    if write_drat_file(proof, f).is_err() {
                        eprintln!("rsat: failed to write proof to {path}");
                        return ExitCode::from(1);
                    }
                    println!("c shared proof written to {path}");
                }
                Err(e) => {
                    eprintln!("rsat: {path}: {e}");
                    return ExitCode::from(1);
                }
            }
        }
        if check_on_unsat && outcome.result.is_unsat() {
            // solve_portfolio already replayed the log (config.verify).
            println!("c shared proof VERIFIED by the built-in RUP checker");
        }
    }

    match &outcome.result {
        SolveResult::Sat(model) => {
            println!("s SATISFIABLE");
            print_model(model);
            ExitCode::from(10)
        }
        SolveResult::Unsat => {
            println!("s UNSATISFIABLE");
            ExitCode::from(20)
        }
        SolveResult::Unknown => {
            println!("s UNKNOWN");
            ExitCode::from(0)
        }
    }
}
