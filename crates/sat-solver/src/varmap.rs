//! Bounds-audited typed containers for per-variable and per-literal state.
//!
//! The repo's `xtask lint` pass forbids raw slice indexing in the solver's
//! hot-path modules (`solver.rs`, `clause_db.rs`, `heap.rs`, `vmtf.rs`):
//! every access to variable- or literal-keyed state must flow through this
//! module instead. Each accessor carries a `debug_assert!` bounds check and
//! the few raw indexing expressions below are individually annotated — they
//! are the audited boundary, kept small enough to review at a glance.
//!
//! In release builds the accessors compile to exactly the slice indexing
//! they replace (one bounds check, no extra branches), so the hot path pays
//! nothing for the discipline.

use cnf::{Lit, Var};

/// Reads `xs[i]` with an audited bounds check, for `Copy` elements.
///
/// The single raw-indexing site below is the shared escape hatch for
/// positional access (trail positions, heap slots) where the index is not a
/// [`Var`] or [`Lit`] key.
#[inline]
pub(crate) fn at<T: Copy>(xs: &[T], i: usize) -> T {
    debug_assert!(i < xs.len(), "index {i} out of bounds (len {})", xs.len());
    xs[i] // xtask: allow(no-index) audited positional access
}

/// Dense map from [`Var`] to `T`, the solver's per-variable state vector.
///
/// Replaces the `Vec<T>` + `v.index() as usize` idiom: the key type makes
/// accidental literal/variable index mix-ups unrepresentable and
/// concentrates the bounds discipline in one audited module.
#[derive(Debug, Clone, Default)]
pub(crate) struct VarMap<T> {
    data: Vec<T>,
}

impl<T> VarMap<T> {
    /// A map over variables `0..num_vars`, every entry set to `fill`.
    pub fn new(num_vars: u32, fill: T) -> Self
    where
        T: Clone,
    {
        VarMap {
            data: vec![fill; num_vars as usize],
        }
    }

    /// Wraps an existing dense vector keyed by variable index.
    #[cfg(test)]
    pub fn from_vec(data: Vec<T>) -> Self {
        VarMap { data }
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// The value at `v` (for `Copy` payloads).
    #[inline]
    pub fn get(&self, v: Var) -> T
    where
        T: Copy,
    {
        let i = v.index() as usize;
        debug_assert!(i < self.data.len(), "variable {i} out of bounds");
        self.data[i] // xtask: allow(no-index) audited Var-keyed access
    }

    /// A mutable reference to the value at `v`.
    #[inline]
    pub fn get_mut(&mut self, v: Var) -> &mut T {
        let i = v.index() as usize;
        debug_assert!(i < self.data.len(), "variable {i} out of bounds");
        &mut self.data[i] // xtask: allow(no-index) audited Var-keyed access
    }

    /// Overwrites the value at `v`.
    #[inline]
    pub fn set(&mut self, v: Var, value: T) {
        *self.get_mut(v) = value;
    }

    /// Iterates the values in variable-index order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Mutably iterates the values in variable-index order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }
}

/// Dense map from [`Lit`] to `T`, keyed by the literal's code.
///
/// Used for the watch lists: `watches.get(l)` holds the watchers of `l`
/// (clauses with `!l` among their first two literals).
#[derive(Debug, Clone, Default)]
pub(crate) struct LitMap<T> {
    data: Vec<T>,
}

impl<T> LitMap<T> {
    /// A map over the `2 * num_vars` literal codes, every entry `fill`.
    pub fn new(num_vars: u32, fill: T) -> Self
    where
        T: Clone,
    {
        LitMap {
            data: vec![fill; 2 * num_vars as usize],
        }
    }

    /// A shared reference to the value at `l`.
    #[cfg(test)]
    #[inline]
    pub fn get(&self, l: Lit) -> &T {
        let i = l.code() as usize;
        debug_assert!(i < self.data.len(), "literal code {i} out of bounds");
        &self.data[i] // xtask: allow(no-index) audited Lit-keyed access
    }

    /// A mutable reference to the value at `l`.
    #[inline]
    pub fn get_mut(&mut self, l: Lit) -> &mut T {
        let i = l.code() as usize;
        debug_assert!(i < self.data.len(), "literal code {i} out of bounds");
        &mut self.data[i] // xtask: allow(no-index) audited Lit-keyed access
    }

    /// Iterates `(literal, value)` pairs in literal-code order.
    pub fn iter(&self) -> impl Iterator<Item = (Lit, &T)> {
        self.data
            .iter()
            .enumerate()
            .map(|(code, t)| (Lit::from_code(code as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varmap_round_trips() {
        let mut m = VarMap::new(3, 0u32);
        m.set(Var::new(1), 7);
        assert_eq!(m.get(Var::new(1)), 7);
        assert_eq!(m.get(Var::new(0)), 0);
        *m.get_mut(Var::new(2)) += 5;
        assert_eq!(m.get(Var::new(2)), 5);
        assert_eq!(m.len(), 3);
        assert_eq!(m.iter().copied().collect::<Vec<_>>(), vec![0, 7, 5]);
    }

    #[test]
    fn litmap_keys_by_code() {
        let mut m = LitMap::new(2, Vec::<u8>::new());
        let l = Lit::from_dimacs(-2);
        m.get_mut(l).push(9);
        assert_eq!(m.get(l), &vec![9]);
        assert!(m.get(Lit::from_dimacs(2)).is_empty());
        let filled: Vec<Lit> = m
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(l, _)| l)
            .collect();
        assert_eq!(filled, vec![l]);
    }

    #[test]
    fn at_reads_positionally() {
        let xs = [10, 20, 30];
        assert_eq!(at(&xs, 2), 30);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[cfg(debug_assertions)]
    fn at_catches_oob_in_debug() {
        let xs = [1];
        let _ = at(&xs, 1);
    }
}
