//! A conflict-driven clause-learning (CDCL) SAT solver with pluggable
//! clause-deletion policies.
//!
//! This crate is the solver substrate for the NeuroSelect reproduction
//! (DAC 2024). Its architecture mirrors the relevant parts of Kissat:
//!
//! * two-watched-literal Boolean constraint propagation,
//! * first-UIP conflict analysis with recursive clause minimization,
//! * EVSIDS variable activities with phase saving,
//! * Luby or glue-EMA restarts,
//! * tiered learned-clause reduction where low-glue clauses are
//!   non-reducible and the rest are scored by a [`DeletionPolicy`].
//!
//! The deletion policy is the paper's object of study: [`DefaultPolicy`]
//! reproduces Kissat's `~glue | ~size` scoring and [`PropFreqPolicy`]
//! implements the new propagation-frequency criterion of Equation (2).
//! Per-variable propagation counters are exposed through
//! [`Solver::propagation_frequencies`] (the data behind the paper's
//! Figure 3).
//!
//! # Examples
//!
//! ```
//! use sat_solver::{Budget, PolicyKind, Solver, SolverConfig};
//!
//! let formula = cnf::parse_dimacs_str("p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n")?;
//! let mut solver = Solver::new(&formula, SolverConfig::with_policy(PolicyKind::PropFreq));
//! let result = solver.solve_with_budget(Budget::conflicts(100_000));
//! if let Some(model) = result.model() {
//!     assert!(cnf::verify_model(&formula, model).is_ok());
//! }
//! # Ok::<(), cnf::ParseDimacsError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod check;
mod clause_db;
mod config;
mod freq;
mod heap;
mod inprocess;
mod instrument;
mod lbool;
mod observer;
mod policy;
mod portfolio;
mod preprocess;
mod proof;
mod resilience;
mod restart;
mod solver;
mod varmap;
mod vmtf;

pub use check::{CheckError, CheckLevel};
pub use config::{Budget, SolveResult, SolverConfig, SolverStats, StopCause};
pub use freq::FrequencyTable;
pub use inprocess::InprocessStats;
pub use instrument::SolverTelemetry;
pub use lbool::LBool;
pub use observer::{GlueTrace, NullObserver, SearchObserver};
pub use policy::{
    ActivityPolicy, ClauseScoreCtx, DefaultPolicy, DeletionPolicy, PolicyKind, PropFreqPolicy,
};
pub use portfolio::{
    solve_portfolio, worker_config, ConfigureHook, PoolStats, PortfolioConfig, PortfolioError,
    PortfolioResult, SharedClausePool, WorkerReport,
};
pub use preprocess::{preprocess, PreprocessConfig, Preprocessed, Reconstruction};
pub use proof::{check_proof, ProofError, ProofLogger, ProofStep};
pub use resilience::{run_isolated, WorkerCrash};
pub use restart::{luby, RestartScheduler, RestartStrategy};
pub use solver::{
    solve_with_policy, solve_with_policy_recorded, Branching, Checkpoint, ClauseExchange, DbStats,
    Solver,
};
