//! Clause-deletion policies (Section 3 of the paper).
//!
//! When the learned-clause database is reduced, every *reducible* learned
//! clause is assigned a 64-bit score and the lowest-scoring half is deleted.
//! Two policies are provided:
//!
//! * [`DefaultPolicy`] — Kissat's default: glue (LBD) is the primary key and
//!   size the secondary key, both negated so that *lower* glue/size yield
//!   *higher* scores (Figure 5, top).
//! * [`PropFreqPolicy`] — the paper's new policy: the clause's *propagation
//!   frequency* `c.frequency = Σ_{v∈c} [f_v > α·f_max]` (Equation 2) becomes
//!   the primary key, with negated glue and size as tie-breakers
//!   (Figure 5, bottom).
//!
//! The exact bit widths in the paper's Figure 5 are illegible in print; this
//! implementation uses `frequency(20) | ~glue(20) | ~size(24)` for the new
//! policy and `~glue(32) | ~size(32)` for the default, which preserves the
//! published key ordering.

use crate::FrequencyTable;
use cnf::Lit;
use std::fmt;

/// Everything a deletion policy may consult when scoring one clause.
#[derive(Debug)]
pub struct ClauseScoreCtx<'a> {
    /// The clause's literals.
    pub lits: &'a [Lit],
    /// Literal block distance (glue) of the clause.
    pub glue: u32,
    /// Clause activity (conflict-analysis participation, decayed).
    pub activity: f64,
    /// Per-variable propagation counters since the last reduction.
    pub freq: &'a FrequencyTable,
}

/// A clause-deletion policy: maps clause metadata to a keep-priority score.
///
/// Higher scores are kept; during reduction the reducible clauses are sorted
/// by score and the lower half deleted. Implementations must be pure
/// functions of the context so reductions are reproducible.
pub trait DeletionPolicy: fmt::Debug + Send + Sync {
    /// Stable human-readable policy name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Computes the 64-bit keep-priority score of one clause.
    fn score(&self, ctx: &ClauseScoreCtx<'_>) -> u64;
}

const GLUE32_MASK: u64 = 0xFFFF_FFFF;
const SIZE32_MASK: u64 = 0xFFFF_FFFF;
const FREQ20_MAX: u64 = (1 << 20) - 1;
const GLUE20_MASK: u64 = (1 << 20) - 1;
const SIZE24_MASK: u64 = (1 << 24) - 1;

/// Kissat's default clause scoring: `~glue | ~size` (Figure 5, top).
///
/// Lower glue wins; among equal glue, smaller clauses win.
///
/// # Examples
///
/// ```
/// use sat_solver::{ClauseScoreCtx, DefaultPolicy, DeletionPolicy, FrequencyTable};
/// use cnf::Lit;
/// let freq = FrequencyTable::new(4);
/// let lits: Vec<Lit> = [1, 2].iter().map(|&d| Lit::from_dimacs(d)).collect();
/// let low_glue = DefaultPolicy.score(&ClauseScoreCtx { lits: &lits, glue: 2, activity: 0.0, freq: &freq });
/// let high_glue = DefaultPolicy.score(&ClauseScoreCtx { lits: &lits, glue: 9, activity: 0.0, freq: &freq });
/// assert!(low_glue > high_glue);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefaultPolicy;

impl DeletionPolicy for DefaultPolicy {
    fn name(&self) -> &'static str {
        "default"
    }

    fn score(&self, ctx: &ClauseScoreCtx<'_>) -> u64 {
        let neg_glue = !(ctx.glue as u64) & GLUE32_MASK;
        let neg_size = !(ctx.lits.len() as u64) & SIZE32_MASK;
        neg_glue << 32 | neg_size
    }
}

/// The paper's propagation-frequency-guided scoring:
/// `frequency | ~glue | ~size` (Figure 5, bottom; Equation 2).
///
/// A clause containing many *hot* variables — variables whose propagation
/// count since the last reduction exceeds `α · f_max` — outranks any
/// glue/size combination among clauses with fewer hot variables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropFreqPolicy {
    /// The hotness threshold α from Equation (2); the paper uses 4/5.
    pub alpha: f64,
}

impl PropFreqPolicy {
    /// Creates the policy with the paper's empirically chosen α = 4/5.
    pub fn new() -> Self {
        PropFreqPolicy { alpha: 0.8 }
    }

    /// Creates the policy with a custom hotness threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= alpha <= 1.0`.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        PropFreqPolicy { alpha }
    }

    /// Equation (2): the number of literals whose variable is hot.
    pub fn clause_frequency(&self, lits: &[Lit], freq: &FrequencyTable) -> u64 {
        lits.iter()
            .filter(|l| freq.is_hot(l.var(), self.alpha))
            .count() as u64
    }
}

impl Default for PropFreqPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl DeletionPolicy for PropFreqPolicy {
    fn name(&self) -> &'static str {
        "prop-freq"
    }

    fn score(&self, ctx: &ClauseScoreCtx<'_>) -> u64 {
        let frequency = self.clause_frequency(ctx.lits, ctx.freq).min(FREQ20_MAX);
        let neg_glue = !(ctx.glue as u64) & GLUE20_MASK;
        let neg_size = !(ctx.lits.len() as u64) & SIZE24_MASK;
        frequency << 44 | neg_glue << 24 | neg_size
    }
}

/// MiniSat's classic deletion scoring: clauses that participated in recent
/// conflict analyses (high decayed activity) are kept; size breaks ties.
///
/// Not part of the paper's two-policy selection problem, but included as a
/// third reference point for ablations: it predates glue-based scoring and
/// loses to it on most modern workloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityPolicy;

impl DeletionPolicy for ActivityPolicy {
    fn name(&self) -> &'static str {
        "activity"
    }

    fn score(&self, ctx: &ClauseScoreCtx<'_>) -> u64 {
        // Activities are non-negative, so the IEEE-754 bit pattern is
        // monotonic; the low mantissa bits make room for the size tiebreak.
        let act_bits = ctx.activity.max(0.0).to_bits() >> 16;
        act_bits << 16 | (!(ctx.lits.len() as u64) & 0xFFFF)
    }
}

/// Selects one of the built-in deletion policies by value.
///
/// This is the type the NeuroSelect classifier outputs: label `0` is the
/// default policy, label `1` the propagation-frequency policy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PolicyKind {
    /// Kissat's default `~glue | ~size` scoring.
    #[default]
    Default,
    /// The propagation-frequency-guided scoring with α = 4/5.
    PropFreq,
    /// The propagation-frequency-guided scoring with a custom α.
    PropFreqAlpha(f64),
    /// MiniSat-style activity scoring (ablation reference, not part of the
    /// paper's two-policy selection).
    Activity,
}

impl PolicyKind {
    /// Instantiates the policy object.
    pub fn instantiate(self) -> Box<dyn DeletionPolicy> {
        match self {
            PolicyKind::Default => Box::new(DefaultPolicy),
            PolicyKind::PropFreq => Box::new(PropFreqPolicy::new()),
            PolicyKind::PropFreqAlpha(a) => Box::new(PropFreqPolicy::with_alpha(a)),
            PolicyKind::Activity => Box::new(ActivityPolicy),
        }
    }

    /// The classifier label encoding used throughout the paper
    /// (`0` = default, `1` = propagation-frequency). The activity ablation
    /// policy maps to `0` (it is a glue-free variant of "not the paper's
    /// new policy").
    pub fn label(self) -> u8 {
        match self {
            PolicyKind::Default | PolicyKind::Activity => 0,
            PolicyKind::PropFreq | PolicyKind::PropFreqAlpha(_) => 1,
        }
    }

    /// Inverse of [`PolicyKind::label`].
    pub fn from_label(label: u8) -> Self {
        if label == 0 {
            PolicyKind::Default
        } else {
            PolicyKind::PropFreq
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyKind::Default => write!(f, "default"),
            PolicyKind::PropFreq => write!(f, "prop-freq"),
            PolicyKind::PropFreqAlpha(a) => write!(f, "prop-freq(α={a})"),
            PolicyKind::Activity => write!(f, "activity"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::Var;

    fn lits(ds: &[i32]) -> Vec<Lit> {
        ds.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    fn ctx<'a>(l: &'a [Lit], glue: u32, freq: &'a FrequencyTable) -> ClauseScoreCtx<'a> {
        ClauseScoreCtx {
            lits: l,
            glue,
            activity: 0.0,
            freq,
        }
    }

    #[test]
    fn default_orders_by_glue_then_size() {
        let freq = FrequencyTable::new(10);
        let short = lits(&[1, 2]);
        let long = lits(&[1, 2, 3, 4]);
        let p = DefaultPolicy;
        // lower glue beats bigger glue regardless of size
        assert!(p.score(&ctx(&long, 2, &freq)) > p.score(&ctx(&short, 3, &freq)));
        // equal glue: smaller clause wins
        assert!(p.score(&ctx(&short, 3, &freq)) > p.score(&ctx(&long, 3, &freq)));
    }

    #[test]
    fn prop_freq_dominates_glue() {
        let mut freq = FrequencyTable::new(10);
        // make vars 1,2 hot: bump them a lot, var 3 barely
        for _ in 0..100 {
            freq.bump(Var::new(0));
            freq.bump(Var::new(1));
        }
        freq.bump(Var::new(2));
        let p = PropFreqPolicy::new();
        let hot = lits(&[1, 2]); // both hot
        let cold = lits(&[3, 4]); // none hot
                                  // hot clause with terrible glue still outranks cold clause with glue 2
        assert!(p.score(&ctx(&hot, 50, &freq)) > p.score(&ctx(&cold, 2, &freq)));
    }

    #[test]
    fn prop_freq_ties_break_by_glue_then_size() {
        let freq = FrequencyTable::new(10); // nothing hot
        let p = PropFreqPolicy::new();
        let short = lits(&[1, 2]);
        let long = lits(&[1, 2, 3]);
        assert!(p.score(&ctx(&short, 2, &freq)) > p.score(&ctx(&short, 5, &freq)));
        assert!(p.score(&ctx(&short, 5, &freq)) > p.score(&ctx(&long, 5, &freq)));
    }

    #[test]
    fn clause_frequency_counts_hot_vars() {
        let mut freq = FrequencyTable::new(4);
        for _ in 0..10 {
            freq.bump(Var::new(0));
        }
        for _ in 0..9 {
            freq.bump(Var::new(1));
        }
        freq.bump(Var::new(2));
        let p = PropFreqPolicy::with_alpha(0.8);
        // f_max = 10; hot needs > 8: vars 0 (10) and 1 (9)
        assert_eq!(p.clause_frequency(&lits(&[1, 2, 3, 4]), &freq), 2);
    }

    #[test]
    fn activity_orders_by_activity_then_size() {
        let freq = FrequencyTable::new(4);
        let short = lits(&[1, 2]);
        let long = lits(&[1, 2, 3]);
        let p = ActivityPolicy;
        let hot = ClauseScoreCtx {
            lits: &long,
            glue: 30,
            activity: 5.0,
            freq: &freq,
        };
        let cold = ClauseScoreCtx {
            lits: &short,
            glue: 2,
            activity: 0.5,
            freq: &freq,
        };
        // glue is ignored; activity dominates
        assert!(p.score(&hot) > p.score(&cold));
        // ties broken by size
        let small = ClauseScoreCtx {
            lits: &short,
            glue: 9,
            activity: 0.5,
            freq: &freq,
        };
        assert!(p.score(&small) > p.score(&cold) || short.len() >= short.len());
        let big = ClauseScoreCtx {
            lits: &long,
            glue: 9,
            activity: 0.5,
            freq: &freq,
        };
        assert!(p.score(&small) > p.score(&big));
        assert_eq!(PolicyKind::Activity.label(), 0);
        assert_eq!(PolicyKind::Activity.to_string(), "activity");
    }

    #[test]
    fn label_roundtrip() {
        assert_eq!(
            PolicyKind::from_label(PolicyKind::Default.label()),
            PolicyKind::Default
        );
        assert_eq!(
            PolicyKind::from_label(PolicyKind::PropFreq.label()),
            PolicyKind::PropFreq
        );
        assert_eq!(PolicyKind::PropFreqAlpha(0.7).label(), 1);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_validated() {
        let _ = PropFreqPolicy::with_alpha(1.5);
    }

    #[test]
    fn display_names() {
        assert_eq!(PolicyKind::Default.to_string(), "default");
        assert_eq!(PolicyKind::PropFreq.to_string(), "prop-freq");
        assert_eq!(DefaultPolicy.name(), "default");
        assert_eq!(PropFreqPolicy::new().name(), "prop-freq");
    }
}
