//! The in-search inprocessing engine: subsumption, self-subsuming
//! resolution, bounded variable elimination (BVE) with model
//! reconstruction, and vivification of kept learned clauses.
//!
//! Where `preprocess.rs` offers a one-shot simplification of a formula
//! *before* search, this module simplifies the solver's live clause
//! database *during* search. Rounds run at restart boundaries (the trail
//! is at the root level, so clauses can be detached, strengthened, and
//! replaced without touching any in-flight decision) and are metered by a
//! per-round step budget so a pathological instance degrades to a clean
//! mid-round abort instead of a stall.
//!
//! # Incremental occurrence lists and touched queues
//!
//! The engine keeps a persistent *touched-variable* queue: every clause
//! the solver learns or imports marks its variables touched, and a round
//! only re-examines clauses containing a touched variable (the first
//! round touches everything). Occurrence lists over the live clause
//! database are rebuilt per round — they index `ClauseRef`s lazily, so a
//! clause deleted mid-round is filtered by a liveness check on read
//! rather than eagerly unlinked.
//!
//! # DRAT soundness
//!
//! Every derivation is logged append-ordered through the solver's
//! [`ProofLogger`](crate::ProofLogger), additions strictly before the
//! deletions they justify:
//!
//! * a **subsumed** clause is only deleted (deletions never affect
//!   proof validity);
//! * a **strengthened** or **vivified** clause is a reverse-unit-
//!   propagation (RUP) consequence of the clauses already logged — its
//!   shortened form is added first, then the long form is deleted;
//! * a **BVE resolvent** is a single resolution step, hence RUP; all
//!   resolvents of the pivot are added before any clause containing the
//!   pivot is deleted.
//!
//! Under a shared portfolio proof the adds travel through
//! [`ClauseExchange::on_learn`](crate::ClauseExchange::on_learn) (which
//! appends to the shared log before any pool publication) and the
//! deletions are simply not recorded — the shared log is append-only and
//! remains valid without them.
//!
//! # Model reconstruction
//!
//! BVE removes every clause mentioning the pivot variable; the removed
//! irredundant clauses are pushed onto a reconstruction stack. At SAT
//! exit [`Solver::extract_model`] replays the stack in reverse, choosing
//! the pivot polarity that satisfies all saved clauses — the classic
//! SatELite argument: if neither polarity worked, two saved clauses
//! would resolve to a clause falsified by the model, contradicting the
//! model satisfying the resolvent-extended database.

use crate::clause_db::ClauseRef;
use crate::solver::Checkpoint;
use crate::varmap::VarMap;
use crate::{LBool, Solver};
use cnf::{Lit, Var};

/// Eliminate a variable only if each polarity occurs at most this often
/// in irredundant clauses (bounds the resolvent computation).
const BVE_OCC_LIMIT: usize = 16;
/// BVE may not grow the irredundant clause count (resolvents kept must
/// not exceed clauses removed plus this slack).
const BVE_GROWTH: usize = 0;
/// Occurrence-list scan cap for subsumption/SSR: at most this many
/// entries of one literal's list are examined per candidate, so a
/// pathologically frequent literal cannot eat the round.
const OCC_SCAN_LIMIT: usize = 256;
/// Vivification probes at most this many learned clauses per round.
const VIVIFY_CLAUSE_LIMIT: usize = 64;
/// Only learned clauses at most this glue are worth vivification probes
/// (they are the ones the deletion policy will keep).
const VIVIFY_GLUE_LIMIT: u32 = 6;
/// Ceiling on the per-round work budget; exhausting the budget aborts
/// the round cleanly after the current atomic operation.
const ROUND_STEP_BUDGET: u64 = 200_000;
/// Floor on the per-round work budget: even a round scheduled right
/// after a cheap stretch of search gets enough steps to make progress.
const MIN_ROUND_STEP_BUDGET: u64 = 10_000;
/// A round may spend at most `propagations-since-last-round /
/// INPROCESS_EFFORT_DIV` steps, keeping inprocessing a bounded fraction
/// of search effort instead of a fixed (potentially dominating) cost.
const INPROCESS_EFFORT_DIV: u64 = 4;
/// Budget substituted by the `inprocess-stall` fault: small enough that
/// the round aborts almost immediately, exercising the mid-round abort
/// path that the chaos suite pins.
const STALLED_STEP_BUDGET: u64 = 64;

/// Counters accumulated by the inprocessing engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InprocessStats {
    /// Completed inprocessing rounds.
    pub rounds: u64,
    /// Rounds skipped before doing any work (fault injection).
    pub skipped_rounds: u64,
    /// Rounds aborted mid-way by the step budget.
    pub aborted_rounds: u64,
    /// Clauses deleted because another live clause subsumes them (plus
    /// root-satisfied clauses swept while building occurrence lists).
    pub subsumed: u64,
    /// Clauses shortened by self-subsuming resolution or vivification.
    pub strengthened: u64,
    /// Variables eliminated by bounded variable elimination.
    pub eliminated_vars: u64,
    /// Resolvents added by bounded variable elimination.
    pub resolvents_added: u64,
    /// Learned clauses shortened or deleted by vivification.
    pub vivified: u64,
    /// Unit clauses derived by strengthening/elimination this far.
    pub units_derived: u64,
    /// Shared-pool imports dropped because they mention an eliminated
    /// variable.
    pub imports_skipped: u64,
}

/// Persistent inprocessing state carried by the solver across rounds.
pub(crate) struct InprocessEngine {
    /// Variables touched since the previous round (by learning, imports,
    /// or in-round rewrites); only clauses containing one are revisited.
    touched: VarMap<bool>,
    touched_queue: Vec<Var>,
    /// Variables removed from the formula by BVE.
    eliminated: VarMap<bool>,
    /// `(pivot, saved irredundant clauses)` in elimination order;
    /// replayed in reverse by [`extend_model`](Self::extend_model).
    steps: Vec<(Lit, Vec<Vec<Lit>>)>,
    /// Restarts since the last round (compared against
    /// `SolverConfig::inprocess_interval`).
    restarts_since: u64,
    /// False until the first round has run (the first round visits every
    /// clause instead of the touched subset).
    first_round_done: bool,
    /// Solver propagation count at the end of the previous round; the
    /// next round's step budget is a fraction of the delta, so engine
    /// effort tracks search effort.
    last_round_propagations: u64,
    /// Rotation cursors persisting across rounds: an aborted round
    /// resumes its subsumption / elimination sweeps where it stopped
    /// instead of re-spending the budget on the same prefix.
    subsume_cursor: usize,
    bve_cursor: u32,
    /// Root-trail prefix already logged to the proof as explicit unit
    /// additions. Deleting a root-satisfied clause is only DRAT-safe once
    /// the satisfying unit no longer depends on it for reverse-unit-
    /// propagation, so every round logs the trail suffix before deleting
    /// anything (the root trail never shrinks).
    units_logged: usize,
    stats: InprocessStats,
}

impl InprocessEngine {
    pub(crate) fn new(num_vars: u32) -> Self {
        InprocessEngine {
            touched: VarMap::new(num_vars, false),
            touched_queue: Vec::new(),
            eliminated: VarMap::new(num_vars, false),
            steps: Vec::new(),
            restarts_since: 0,
            first_round_done: false,
            last_round_propagations: 0,
            subsume_cursor: 0,
            bve_cursor: 0,
            units_logged: 0,
            stats: InprocessStats::default(),
        }
    }

    /// Marks a variable for re-examination in the next round.
    pub(crate) fn touch(&mut self, v: Var) {
        if !self.touched.get(v) {
            self.touched.set(v, true);
            self.touched_queue.push(v);
        }
    }

    /// Marks every variable of a clause for re-examination.
    pub(crate) fn touch_lits(&mut self, lits: &[Lit]) {
        for &l in lits {
            self.touch(l.var());
        }
    }

    /// Whether `v` was eliminated by BVE.
    pub(crate) fn is_eliminated(&self, v: Var) -> bool {
        self.eliminated.get(v)
    }

    /// Engine counters so far.
    pub(crate) fn stats(&self) -> InprocessStats {
        self.stats
    }

    /// The reconstruction stack (pivot + saved clauses per elimination).
    pub(crate) fn reconstruction_steps(&self) -> &[(Lit, Vec<Vec<Lit>>)] {
        &self.steps
    }

    /// Replays the reconstruction stack in reverse, fixing each pivot to
    /// the polarity that satisfies all clauses saved at its elimination.
    pub(crate) fn extend_model(&self, model: &mut [bool]) {
        for (pivot, clauses) in self.steps.iter().rev() {
            let v = pivot.var().index() as usize;
            model[v] = pivot.is_negated(); // try the pivot literal false
            let all_satisfied = clauses
                .iter()
                .all(|c| c.iter().any(|l| l.eval(model[l.var().index() as usize])));
            if !all_satisfied {
                model[v] = pivot.is_positive();
            }
        }
    }

    /// Internal-consistency audit of the persistent engine state, used by
    /// the `checks` feature: the touched queue and flags must agree, and
    /// the reconstruction stack must carry distinct pivots matching the
    /// eliminated flags.
    pub(crate) fn audit(&self, num_vars: u32) -> Result<(), String> {
        let mut queued = VarMap::new(num_vars, false);
        for &v in &self.touched_queue {
            if !self.touched.get(v) {
                return Err(format!("queued variable {} not flagged touched", v.index()));
            }
            if queued.get(v) {
                return Err(format!("variable {} queued twice", v.index()));
            }
            queued.set(v, true);
        }
        let flagged = (0..num_vars)
            .map(Var::new)
            .filter(|&v| self.touched.get(v))
            .count();
        if flagged != self.touched_queue.len() {
            return Err(format!(
                "{flagged} touched flags but queue holds {}",
                self.touched_queue.len()
            ));
        }
        let mut pivots = VarMap::new(num_vars, false);
        for (pivot, _) in &self.steps {
            let v = pivot.var();
            if pivots.get(v) {
                return Err(format!("pivot {} eliminated twice", v.index()));
            }
            pivots.set(v, true);
            if !self.eliminated.get(v) {
                return Err(format!("pivot {} not flagged eliminated", v.index()));
            }
        }
        let eliminated = (0..num_vars)
            .map(Var::new)
            .filter(|&v| self.eliminated.get(v))
            .count();
        if eliminated != self.steps.len() {
            return Err(format!(
                "{eliminated} eliminated flags but {} reconstruction steps",
                self.steps.len()
            ));
        }
        Ok(())
    }
}

/// Outcome of one in-round sub-pass.
#[derive(PartialEq, Eq, Clone, Copy)]
enum IpStatus {
    /// Sub-pass completed within budget.
    Done,
    /// Step budget exhausted; the round must end (state is consistent).
    Abort,
    /// The formula was refuted at the root level.
    Unsat,
}

/// Per-round work meter.
struct RoundBudget {
    steps: u64,
}

impl RoundBudget {
    fn spend(&mut self, n: u64) -> bool {
        self.steps = self.steps.saturating_sub(n);
        self.steps > 0
    }
}

/// Per-round occurrence index: `occ[lit.code()]` holds refs of clauses
/// that contained `lit` when indexed. Entries go stale when clauses are
/// deleted or rewritten mid-round, so every read re-checks liveness and
/// membership against the clause database.
struct Occurrences {
    by_lit: Vec<Vec<ClauseRef>>,
}

impl Occurrences {
    fn new(num_vars: u32) -> Self {
        Occurrences {
            by_lit: vec![Vec::new(); 2 * num_vars as usize],
        }
    }

    fn push(&mut self, lits: &[Lit], cref: ClauseRef) {
        for &l in lits {
            self.by_lit[l.code() as usize].push(cref);
        }
    }

    fn len(&self, l: Lit) -> usize {
        self.by_lit[l.code() as usize].len()
    }

    /// Indexed access for loops that mutate the index mid-iteration
    /// (appends by `push` never invalidate already-visited positions).
    fn at(&self, l: Lit, i: usize) -> ClauseRef {
        self.by_lit[l.code() as usize][i]
    }

    /// Current refs listed under `l` (stale entries included; callers
    /// must re-validate against the database).
    fn refs(&self, l: Lit) -> Vec<ClauseRef> {
        self.by_lit[l.code() as usize].clone()
    }
}

impl Solver {
    /// Counts a restart boundary and reports whether an inprocessing
    /// round is due. Never due when inprocessing is disabled.
    pub(crate) fn inprocess_due(&mut self) -> bool {
        let interval = self.config.inprocess_interval.max(1);
        match &mut self.inprocess {
            Some(eng) => {
                eng.restarts_since += 1;
                eng.restarts_since >= interval
            }
            None => false,
        }
    }

    /// Whether `v` was eliminated by inprocessing's BVE. Eliminated
    /// variables are skipped by decision heuristics and re-valued by
    /// model reconstruction.
    #[inline]
    pub(crate) fn var_is_eliminated(&self, v: Var) -> bool {
        self.inprocess.as_ref().is_some_and(|e| e.is_eliminated(v))
    }

    /// Engine counters, when inprocessing is enabled.
    pub fn inprocess_stats(&self) -> Option<InprocessStats> {
        self.inprocess.as_ref().map(|e| e.stats())
    }

    /// Enables in-search inprocessing on an already-constructed solver
    /// (the portfolio's `configure` hook runs after construction).
    pub fn enable_inprocessing(&mut self) {
        self.config.inprocess = true;
        if self.inprocess.is_none() {
            self.inprocess = Some(Box::new(InprocessEngine::new(self.num_vars)));
        }
    }

    /// Whether a shared-pool import must be dropped because it mentions
    /// a variable this solver eliminated (the clause is still implied,
    /// but re-attaching it would resurrect the eliminated variable).
    pub(crate) fn inprocess_rejects_import(&mut self, lits: &[Lit]) -> bool {
        let Some(eng) = &mut self.inprocess else {
            return false;
        };
        let reject = lits.iter().any(|l| {
            (l.var().index() as usize) < eng.eliminated.len() && eng.eliminated.get(l.var())
        });
        if reject {
            eng.stats.imports_skipped += 1;
        }
        reject
    }

    /// Panics if `lits` mentions an eliminated variable — the documented
    /// API contract of the incremental interface: clauses and assumptions
    /// over eliminated variables cannot be interpreted against the
    /// simplified database.
    pub(crate) fn assert_not_eliminated(&self, lits: &[Lit], what: &str) {
        if let Some(eng) = &self.inprocess {
            for &l in lits {
                // xtask: allow(no-hard-assert) documented API contract, not search-loop code
                assert!(
                    l.var().index() >= self.num_vars || !eng.is_eliminated(l.var()),
                    "{what} mentions variable {} eliminated by inprocessing",
                    l.var()
                );
            }
        }
    }

    /// Runs one budget-metered inprocessing round at a restart boundary.
    /// Returns `false` when the formula was refuted at the root level
    /// (the empty clause has been logged).
    pub(crate) fn inprocess_round(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        // The engine moves out for the duration of the round so `self`
        // stays freely borrowable (the `import_shared` pattern).
        let Some(mut eng) = self.inprocess.take() else {
            return true;
        };
        eng.restarts_since = 0;
        let round = eng.stats.rounds + eng.stats.skipped_rounds + eng.stats.aborted_rounds;
        // Fault point: detected corruption of the engine's working state.
        // The defense is a clean skip — no partial mutation has happened.
        if crate::resilience::inject_inprocess_corruption(round) {
            eng.stats.skipped_rounds += 1;
            self.inprocess = Some(eng);
            return true;
        }
        // Budget policy: a fraction of the search effort (propagations)
        // since the last round, clamped to [floor, ceiling]. See §15 of
        // DESIGN.md for the rationale.
        let work = self.stats.propagations - eng.last_round_propagations;
        eng.last_round_propagations = self.stats.propagations;
        let mut budget = RoundBudget {
            steps: if crate::resilience::inject_inprocess_stall(round) {
                STALLED_STEP_BUDGET
            } else {
                (work / INPROCESS_EFFORT_DIV).clamp(MIN_ROUND_STEP_BUDGET, ROUND_STEP_BUDGET)
            },
        };
        let status = self.run_round(&mut eng, &mut budget);
        match status {
            IpStatus::Unsat => {
                self.inprocess = Some(eng);
                false
            }
            IpStatus::Abort => {
                eng.stats.aborted_rounds += 1;
                self.inprocess = Some(eng);
                self.checkpoint(Checkpoint::PostInprocess);
                true
            }
            IpStatus::Done => {
                eng.first_round_done = true;
                eng.stats.rounds += 1;
                self.inprocess = Some(eng);
                self.checkpoint(Checkpoint::PostInprocess);
                true
            }
        }
    }

    fn run_round(&mut self, eng: &mut InprocessEngine, budget: &mut RoundBudget) -> IpStatus {
        if !self.ip_root_fixpoint(eng) {
            return IpStatus::Unsat;
        }
        // Snapshot and drain the touched set; work discovered during the
        // round re-touches variables for the *next* round.
        let full = !eng.first_round_done;
        let mut touched = VarMap::new(self.num_vars, false);
        let mut snapshot: Vec<Var> = Vec::new();
        for v in eng.touched_queue.drain(..) {
            eng.touched.set(v, false);
            touched.set(v, true);
            snapshot.push(v);
        }

        let mut occ = Occurrences::new(self.num_vars);
        let mut candidates: Vec<ClauseRef> = Vec::new();
        let status = (|| {
            let sweep = self.ip_index_clauses(eng, &mut occ, &mut candidates, &touched, full);
            if sweep != IpStatus::Done {
                return sweep;
            }
            // Each rewriting phase gets its own slice of the round budget
            // (leftover carries forward), so a budget-bound round still
            // advances subsumption, elimination, AND vivification instead
            // of starving the later phases behind an ever-aborting first
            // one. The persistent cursors make the per-phase progress
            // monotone across rounds.
            let mut aborted = false;
            let total = budget.steps;
            let mut slice = RoundBudget { steps: total / 2 };
            match self.ip_subsume(eng, &mut occ, &candidates, &mut slice) {
                IpStatus::Unsat => return IpStatus::Unsat,
                IpStatus::Abort => aborted = true,
                IpStatus::Done => {}
            }
            slice.steps += total / 4;
            match self.ip_eliminate(eng, &mut occ, &touched, full, &mut slice) {
                IpStatus::Unsat => return IpStatus::Unsat,
                IpStatus::Abort => aborted = true,
                IpStatus::Done => {}
            }
            slice.steps += total / 4;
            match self.ip_vivify(eng, &mut occ, &mut slice) {
                IpStatus::Unsat => return IpStatus::Unsat,
                IpStatus::Abort => aborted = true,
                IpStatus::Done => {}
            }
            budget.steps = slice.steps;
            if !self.ip_root_fixpoint(eng) {
                return IpStatus::Unsat;
            }
            if aborted {
                IpStatus::Abort
            } else {
                IpStatus::Done
            }
        })();
        if status == IpStatus::Abort {
            // An aborted round must not lose scheduling state: whatever was
            // drained above is re-queued so the next round revisits it.
            for v in snapshot {
                eng.touch(v);
            }
        }
        status
    }

    /// Propagates to fixpoint at the root level and clears root reasons
    /// so no clause is pinned as an antecedent during the round (conflict
    /// analysis never resolves on level-0 literals, so a root reason is
    /// never read again). Returns `false` on a root conflict, with the
    /// empty clause logged.
    ///
    /// Every not-yet-logged root literal is appended to the proof as an
    /// explicit unit addition (each is RUP: unit propagation over the
    /// clauses currently in the proof derives it). The round may then
    /// delete a root-satisfied clause without stranding later RUP checks
    /// that would have needed it to re-derive the unit.
    fn ip_root_fixpoint(&mut self, eng: &mut InprocessEngine) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if self.propagate().is_some() {
            self.ok = false;
            if let Some(p) = &mut self.proof {
                if !p.claims_unsat() {
                    p.add_empty();
                }
            }
            return false;
        }
        for i in 0..self.trail.len() {
            let v = crate::varmap::at(&self.trail, i).var();
            self.reason.set(v, None);
        }
        while eng.units_logged < self.trail.len() {
            let unit = crate::varmap::at(&self.trail, eng.units_logged);
            eng.units_logged += 1;
            self.ip_log_add(&[unit], 1);
        }
        true
    }

    /// Logs a derived clause: to the private proof when one is attached,
    /// and through the clause exchange under a shared portfolio proof
    /// (`on_learn` appends to the shared log before any pool export).
    fn ip_log_add(&mut self, lits: &[Lit], glue: u32) {
        if let Some(p) = &mut self.proof {
            p.add(lits);
        }
        if let Some(x) = &mut self.exchange {
            x.on_learn(lits, glue);
        }
    }

    /// Deletes a live, attached clause: proof delete line (private proofs
    /// only — shared logs are append-only), watch detach, database drop.
    fn ip_delete_clause(&mut self, cref: ClauseRef) {
        if let Some(p) = &mut self.proof {
            p.delete(self.db.clause(cref).lits());
        }
        self.detach(cref);
        self.db.remove(cref);
    }

    /// Records a root-level refutation (all literals of a derived clause
    /// are false at level 0).
    fn ip_refute(&mut self) -> IpStatus {
        self.ok = false;
        if let Some(p) = &mut self.proof {
            if !p.claims_unsat() {
                p.add_empty();
            }
        }
        IpStatus::Unsat
    }

    /// Builds the round's occurrence index, sweeping root-satisfied
    /// clauses and stripping root-false literals along the way.
    ///
    /// The sweep is deliberately *not* metered: it is one linear pass over
    /// the live database (the same order of work as a `reduce_db` pass),
    /// and aborting mid-index would leave later phases with a partial
    /// occurrence view while still paying the full sweep again next round.
    fn ip_index_clauses(
        &mut self,
        eng: &mut InprocessEngine,
        occ: &mut Occurrences,
        candidates: &mut Vec<ClauseRef>,
        touched: &VarMap<bool>,
        full: bool,
    ) -> IpStatus {
        for cref in self.db.iter_refs().collect::<Vec<_>>() {
            if !self.db.is_live(cref) {
                continue; // deleted by an earlier unit cascade
            }
            let lits: Vec<Lit> = self.db.clause(cref).lits().to_vec();
            if lits.iter().any(|&l| self.value(l) == LBool::True) {
                // Permanently satisfied at the root; drop it outright.
                self.ip_delete_clause(cref);
                eng.stats.subsumed += 1;
                continue;
            }
            if lits.iter().any(|&l| self.value(l) == LBool::False) {
                let kept: Vec<Lit> = lits
                    .iter()
                    .copied()
                    .filter(|&l| self.value(l) != LBool::False)
                    .collect();
                match self.ip_commit_strengthened(eng, occ, cref, kept) {
                    IpStatus::Unsat => return IpStatus::Unsat,
                    _ => continue,
                }
            }
            occ.push(&lits, cref);
            if full || lits.iter().any(|l| touched.get(l.var())) {
                candidates.push(cref);
            }
        }
        IpStatus::Done
    }

    /// Replaces `old` by the (shorter) clause `kept`, root-normalizing
    /// first. Emits the DRAT add before the delete. May derive a unit and
    /// propagate it to fixpoint.
    fn ip_commit_strengthened(
        &mut self,
        eng: &mut InprocessEngine,
        occ: &mut Occurrences,
        old: ClauseRef,
        mut kept: Vec<Lit>,
    ) -> IpStatus {
        if kept.iter().any(|&l| self.value(l) == LBool::True) {
            // The shortened clause (hence the original) is root-satisfied.
            self.ip_delete_clause(old);
            eng.stats.subsumed += 1;
            return IpStatus::Done;
        }
        kept.retain(|&l| self.value(l) != LBool::False);
        let was_learned = self.db.clause(old).learned;
        let old_glue = self.db.clause(old).glue;
        match *kept.as_slice() {
            [] => self.ip_refute(),
            [unit] => {
                self.ip_log_add(&kept, 1);
                self.ip_delete_clause(old);
                // Asserted like a learned unit (no reason, no frequency
                // bump); mirror `import_clause`.
                self.assign(unit, None);
                eng.touch(unit.var());
                eng.stats.strengthened += 1;
                eng.stats.units_derived += 1;
                if !self.ip_root_fixpoint(eng) {
                    return IpStatus::Unsat;
                }
                IpStatus::Done
            }
            _ => {
                let glue = if was_learned {
                    old_glue.clamp(1, kept.len() as u32)
                } else {
                    0
                };
                self.ip_log_add(&kept, glue.max(1));
                self.ip_delete_clause(old);
                let cref = self.db.add(kept.clone(), was_learned, glue);
                self.attach(cref);
                occ.push(&kept, cref);
                eng.touch_lits(&kept);
                eng.stats.strengthened += 1;
                IpStatus::Done
            }
        }
    }

    /// Forward subsumption and self-subsuming resolution over the
    /// candidate clauses (those containing a touched variable).
    ///
    /// Candidates are visited in a rotation that persists across rounds
    /// (`subsume_cursor`): an aborted round resumes roughly where it
    /// stopped instead of re-spending its budget on the same prefix, so
    /// budget-limited rounds still make monotone progress over the whole
    /// database.
    fn ip_subsume(
        &mut self,
        eng: &mut InprocessEngine,
        occ: &mut Occurrences,
        candidates: &[ClauseRef],
        budget: &mut RoundBudget,
    ) -> IpStatus {
        if candidates.is_empty() {
            return IpStatus::Done;
        }
        let start = eng.subsume_cursor % candidates.len();
        for i in 0..candidates.len() {
            let idx = (start + i) % candidates.len();
            let cref = candidates[idx];
            if !budget.spend(1) {
                eng.subsume_cursor = idx;
                return IpStatus::Abort;
            }
            if !self.db.is_live(cref) {
                continue;
            }
            let lits: Vec<Lit> = self.db.clause(cref).lits().to_vec();
            if lits.iter().any(|&l| self.value(l) != LBool::Undef) {
                // A unit cascade reshaped this clause since indexing; it
                // is re-examined next round (its variables are touched).
                continue;
            }
            let learned = self.db.clause(cref).learned;
            // Forward subsumption through the rarest literal's list,
            // capped so one pathologically frequent literal cannot eat
            // the round.
            let Some(&anchor) = lits.iter().min_by_key(|l| occ.len(**l)) else {
                continue;
            };
            let scan = occ.len(anchor).min(OCC_SCAN_LIMIT);
            for j in 0..scan {
                if !budget.spend(1) {
                    eng.subsume_cursor = idx;
                    return IpStatus::Abort;
                }
                let other = occ.at(anchor, j);
                if other == cref || !self.db.is_live(other) {
                    continue;
                }
                let d = self.db.clause(other);
                // Deleting an irredundant clause is only sound when the
                // subsumer is irredundant too (a learned subsumer may be
                // deleted later by reduction, weakening the formula).
                if learned && !d.learned {
                    continue;
                }
                if lits.len() <= d.len() && lits.iter().all(|l| d.lits().contains(l)) {
                    self.ip_delete_clause(other);
                    eng.stats.subsumed += 1;
                }
            }
            // Self-subsuming resolution: c = (l ∨ A) strengthens
            // d = (¬l ∨ A ∨ B) to (A ∨ B).
            for &l in &lits {
                let scan = occ.len(!l).min(OCC_SCAN_LIMIT);
                for j in 0..scan {
                    if !budget.spend(1) {
                        eng.subsume_cursor = idx;
                        return IpStatus::Abort;
                    }
                    let other = occ.at(!l, j);
                    if other == cref || !self.db.is_live(other) {
                        continue;
                    }
                    let d = self.db.clause(other);
                    if lits.len() > d.len() || !d.lits().contains(&!l) {
                        continue;
                    }
                    if !lits.iter().all(|&x| x == l || d.lits().contains(&x)) {
                        continue;
                    }
                    let kept: Vec<Lit> = d.lits().iter().copied().filter(|&x| x != !l).collect();
                    if self.ip_commit_strengthened(eng, occ, other, kept) == IpStatus::Unsat {
                        return IpStatus::Unsat;
                    }
                    if !self.db.is_live(cref) || lits.iter().any(|&x| self.value(x) != LBool::Undef)
                    {
                        break; // a unit cascade invalidated the subsumer
                    }
                }
                if !self.db.is_live(cref) {
                    break;
                }
            }
        }
        eng.subsume_cursor = 0;
        IpStatus::Done
    }

    /// Bounded variable elimination over unassigned candidate variables
    /// that are neither frozen nor mentioned by the current call's
    /// assumptions. The frozen check is the incremental-soundness half:
    /// a session's assumption candidates must survive every round, not
    /// just rounds inside calls that happen to assume them.
    fn ip_eliminate(
        &mut self,
        eng: &mut InprocessEngine,
        occ: &mut Occurrences,
        touched: &VarMap<bool>,
        full: bool,
        budget: &mut RoundBudget,
    ) -> IpStatus {
        if self.num_vars == 0 {
            return IpStatus::Done;
        }
        let start = eng.bve_cursor % self.num_vars;
        for i in 0..self.num_vars {
            let v = Var::new((start + i) % self.num_vars);
            if !(full || touched.get(v))
                || eng.is_eliminated(v)
                || self.assigns.get(v).is_assigned()
                || self.frozen.get(v)
                || self.assumptions.iter().any(|a| a.var() == v)
            {
                continue;
            }
            if !budget.spend(8) {
                eng.bve_cursor = v.index();
                return IpStatus::Abort;
            }
            let collect = |s: &Solver, lit: Lit, occ: &Occurrences| -> Vec<ClauseRef> {
                let mut refs: Vec<ClauseRef> = Vec::new();
                for cref in occ.refs(lit) {
                    if s.db.is_live(cref)
                        && s.db.clause(cref).lits().contains(&lit)
                        && !refs.contains(&cref)
                    {
                        refs.push(cref);
                    }
                }
                refs
            };
            let pos = collect(self, v.positive(), occ);
            let neg = collect(self, v.negative(), occ);
            if pos.is_empty() && neg.is_empty() {
                continue;
            }
            let pos_orig: Vec<ClauseRef> = pos
                .iter()
                .copied()
                .filter(|&c| !self.db.clause(c).learned)
                .collect();
            let neg_orig: Vec<ClauseRef> = neg
                .iter()
                .copied()
                .filter(|&c| !self.db.clause(c).learned)
                .collect();
            if pos_orig.len() > BVE_OCC_LIMIT || neg_orig.len() > BVE_OCC_LIMIT {
                continue;
            }
            // Resolve irredundant × irredundant on the pivot; skip
            // tautologies and root-satisfied resolvents, strip root-false
            // literals (each surviving resolvent is RUP).
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut empty_resolvent = false;
            'resolve: for &a in &pos_orig {
                for &b in &neg_orig {
                    if !budget.spend(4) {
                        eng.bve_cursor = v.index();
                        return IpStatus::Abort;
                    }
                    let Some(r) = self.ip_resolve(a, b, v.positive()) else {
                        continue;
                    };
                    if r.is_empty() {
                        empty_resolvent = true;
                        break 'resolve;
                    }
                    resolvents.push(r);
                    if resolvents.len() > pos_orig.len() + neg_orig.len() + BVE_GROWTH {
                        break 'resolve;
                    }
                }
            }
            if empty_resolvent {
                return self.ip_refute();
            }
            if resolvents.len() > pos_orig.len() + neg_orig.len() + BVE_GROWTH {
                continue; // elimination would grow the formula
            }
            // Commit. Order matters for the DRAT log: every resolvent is
            // added while its parents are still present, then every
            // clause containing the pivot is deleted.
            let saved: Vec<Vec<Lit>> = pos_orig
                .iter()
                .chain(&neg_orig)
                .map(|&c| self.db.clause(c).lits().to_vec())
                .collect();
            for r in &resolvents {
                self.ip_log_add(r, r.len() as u32);
            }
            for cref in pos.iter().chain(&neg).copied().collect::<Vec<_>>() {
                if self.db.is_live(cref) {
                    self.ip_delete_clause(cref);
                }
            }
            eng.steps.push((v.positive(), saved));
            eng.eliminated.set(v, true);
            eng.stats.eliminated_vars += 1;
            let mut units: Vec<Lit> = Vec::new();
            for r in resolvents {
                eng.stats.resolvents_added += 1;
                match *r.as_slice() {
                    [] => unreachable!("empty resolvents refute above"),
                    [unit] => units.push(unit),
                    _ => {
                        let cref = self.db.add(r.clone(), false, 0);
                        self.attach(cref);
                        occ.push(&r, cref);
                        eng.touch_lits(&r);
                    }
                }
            }
            for unit in units {
                match self.value(unit) {
                    LBool::True => {}
                    LBool::False => return self.ip_refute(),
                    LBool::Undef => {
                        self.assign(unit, None);
                        eng.touch(unit.var());
                        eng.stats.units_derived += 1;
                    }
                }
            }
            if !self.ip_root_fixpoint(eng) {
                return IpStatus::Unsat;
            }
        }
        eng.bve_cursor = 0;
        IpStatus::Done
    }

    /// The resolvent of clauses `a` (containing `pivot`) and `b`
    /// (containing `¬pivot`), root-normalized; `None` when tautological
    /// or root-satisfied.
    fn ip_resolve(&self, a: ClauseRef, b: ClauseRef, pivot: Lit) -> Option<Vec<Lit>> {
        let mut out: Vec<Lit> = Vec::new();
        let ca = self.db.clause(a);
        let cb = self.db.clause(b);
        for &l in ca.lits().iter().chain(cb.lits()) {
            if l.var() == pivot.var() {
                continue;
            }
            match self.value(l) {
                LBool::True => return None, // resolvent is root-satisfied
                LBool::False => continue,   // stripped (RUP via root units)
                LBool::Undef => {}
            }
            if out.contains(&!l) {
                return None; // tautology
            }
            if !out.contains(&l) {
                out.push(l);
            }
        }
        Some(out)
    }

    /// Vivification: probe the literals of kept learned clauses under the
    /// solver's own propagation; conflicts and implied literals shorten
    /// the clause (each shortened form is RUP by the very propagation
    /// that was just observed).
    fn ip_vivify(
        &mut self,
        eng: &mut InprocessEngine,
        occ: &mut Occurrences,
        budget: &mut RoundBudget,
    ) -> IpStatus {
        let mut cands: Vec<(u32, usize, ClauseRef)> = self
            .db
            .iter_learned()
            .filter(|&c| {
                let cl = self.db.clause(c);
                cl.glue <= VIVIFY_GLUE_LIMIT && cl.len() >= 3
            })
            .map(|c| {
                let cl = self.db.clause(c);
                (cl.glue, cl.len(), c)
            })
            .collect();
        cands.sort_unstable();
        cands.truncate(VIVIFY_CLAUSE_LIMIT);
        for (_, _, cref) in cands {
            if !budget.spend(64) {
                return IpStatus::Abort;
            }
            if !self.db.is_live(cref) || !self.db.clause(cref).learned {
                continue; // slot reused since candidate collection
            }
            match self.ip_vivify_one(eng, occ, cref, budget) {
                IpStatus::Unsat => return IpStatus::Unsat,
                IpStatus::Abort => return IpStatus::Abort,
                IpStatus::Done => {}
            }
        }
        IpStatus::Done
    }

    fn ip_vivify_one(
        &mut self,
        eng: &mut InprocessEngine,
        occ: &mut Occurrences,
        cref: ClauseRef,
        budget: &mut RoundBudget,
    ) -> IpStatus {
        debug_assert_eq!(self.decision_level(), 0);
        let lits: Vec<Lit> = self.db.clause(cref).lits().to_vec();
        let glue = self.db.clause(cref).glue;
        // Detach first so the clause cannot propagate against itself
        // while its own literals are probed.
        self.detach(cref);
        let mut kept: Vec<Lit> = Vec::new();
        let mut changed = false;
        let mut satisfied_at_root = false;
        for &l in &lits {
            match self.value(l) {
                LBool::True => {
                    if self.level.get(l.var()) == 0 {
                        satisfied_at_root = true;
                    } else {
                        // ¬kept propagated l: (kept ∨ l) is RUP.
                        kept.push(l);
                        changed = kept.len() < lits.len();
                    }
                    break;
                }
                LBool::False => {
                    // ¬kept propagated ¬l (or l is root-false): drop it.
                    changed = true;
                }
                LBool::Undef => {
                    if !budget.spend(32) {
                        // Abort cleanly: restore the clause untouched.
                        self.backtrack(0);
                        self.attach(cref);
                        return IpStatus::Abort;
                    }
                    self.trail_lim.push(self.trail.len());
                    let before = self.trail.len();
                    self.assign(!l, None);
                    let conflict = self.propagate().is_some();
                    // Probes do real BCP: charge the assignments actually
                    // made so vivification cannot overrun its slice by
                    // orders of magnitude (exhaustion lands next check).
                    let _ = budget.spend((self.trail.len() - before) as u64);
                    if conflict {
                        // Conflict under ¬(kept ∨ l): the prefix is RUP.
                        kept.push(l);
                        changed = kept.len() < lits.len();
                        break;
                    }
                    kept.push(l);
                }
            }
        }
        self.backtrack(0);
        if satisfied_at_root {
            // Learned and permanently satisfied: delete without replacing.
            if let Some(p) = &mut self.proof {
                p.delete(&lits);
            }
            self.db.remove(cref);
            eng.stats.vivified += 1;
            return IpStatus::Done;
        }
        if !changed {
            self.attach(cref);
            return IpStatus::Done;
        }
        eng.stats.vivified += 1;
        match *kept.as_slice() {
            [] => {
                // Every literal was root-false: the database refutes the
                // formula (the fixpoint pass would have caught this).
                self.ip_refute()
            }
            [unit] => {
                self.ip_log_add(&kept, 1);
                if let Some(p) = &mut self.proof {
                    p.delete(&lits);
                }
                self.db.remove(cref);
                self.assign(unit, None);
                eng.touch(unit.var());
                eng.stats.units_derived += 1;
                if !self.ip_root_fixpoint(eng) {
                    return IpStatus::Unsat;
                }
                IpStatus::Done
            }
            _ => {
                let new_glue = glue.clamp(1, kept.len() as u32);
                self.ip_log_add(&kept, new_glue);
                if let Some(p) = &mut self.proof {
                    p.delete(&lits);
                }
                self.db.remove(cref);
                let new_ref = self.db.add(kept.clone(), true, new_glue);
                self.attach(new_ref);
                occ.push(&kept, new_ref);
                eng.touch_lits(&kept);
                IpStatus::Done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{check_proof, Budget, SolveResult, Solver, SolverConfig};
    use cnf::{verify_model, Cnf};

    fn inprocess_config() -> SolverConfig {
        SolverConfig {
            inprocess: true,
            inprocess_interval: 1,
            restart: crate::RestartStrategy::Luby { scale: 2 },
            ..SolverConfig::default()
        }
    }

    fn cnf_of(clauses: &[&[i32]]) -> Cnf {
        let mut f = Cnf::new(0);
        for c in clauses {
            f.add_dimacs(c);
        }
        f
    }

    #[test]
    fn inprocessing_solver_agrees_on_php() {
        let f = crate::preprocess::tests_support::php(5, 4);
        let mut s = Solver::new(&f, inprocess_config());
        s.enable_proof();
        assert!(s.solve().is_unsat());
        let proof = s.take_proof().expect("proof");
        assert!(proof.claims_unsat());
        check_proof(&f, &proof).expect("DRAT replay with inprocessing deletions");
        let stats = s.inprocess_stats().expect("engine enabled");
        assert!(stats.rounds + stats.aborted_rounds > 0, "rounds must run");
    }

    #[test]
    fn inprocessing_models_reconstruct_through_bve() {
        // A chain with easily-eliminable middle variables.
        let f = cnf_of(&[&[1, 2], &[-2, 3], &[-3, 4], &[-4, 5], &[-5, -1, 2]]);
        let mut s = Solver::new(&f, inprocess_config());
        match s.solve() {
            SolveResult::Sat(model) => {
                assert!(verify_model(&f, &model).is_ok(), "reconstructed model");
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn enable_inprocessing_after_construction() {
        let f = cnf_of(&[&[1, 2], &[-1, 2], &[1, -2]]);
        let mut s = Solver::new(&f, SolverConfig::default());
        assert!(s.inprocess_stats().is_none());
        s.enable_inprocessing();
        assert!(s.inprocess_stats().is_some());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn budgeted_inprocessing_solver_resumes() {
        let f = crate::preprocess::tests_support::php(5, 4);
        let mut s = Solver::new(&f, inprocess_config());
        let mut r = s.solve_with_budget(Budget::conflicts(10));
        while r.is_unknown() {
            r = s.solve_with_budget(Budget::conflicts(s.stats().conflicts + 50));
        }
        assert!(r.is_unsat());
    }

    #[cfg(feature = "checks")]
    #[test]
    fn full_checks_survive_inprocessing_search() {
        let f = crate::preprocess::tests_support::php(5, 4);
        let mut s = Solver::new(&f, inprocess_config());
        s.set_check_level(crate::CheckLevel::Full);
        // The auditor panics on any violated invariant (including the
        // inprocessing families at PostInprocess), so reaching the
        // verdict is the assertion.
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn engine_audit_accepts_consistent_state() {
        let f = cnf_of(&[&[1, 2, 3], &[-1, 2], &[2, 3]]);
        let mut s = Solver::new(&f, inprocess_config());
        assert!(s.solve().is_sat());
        let eng = s.inprocess.as_ref().expect("engine");
        eng.audit(s.num_vars()).expect("consistent engine state");
    }
}
