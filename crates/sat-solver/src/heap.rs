//! Max-heap over variables ordered by VSIDS activity.

use crate::varmap::{at, VarMap};
use cnf::Var;

/// A binary max-heap of variables keyed by an external activity map,
/// with O(log n) increase-key via an index table.
///
/// The solver keeps every unassigned variable in the heap; popping yields
/// the highest-activity candidate for the next decision.
#[derive(Debug, Default, Clone)]
pub struct VarHeap {
    heap: Vec<Var>,
    /// `position.get(v)` = index in `heap`, or `usize::MAX` when absent.
    position: VarMap<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    /// Creates an empty heap sized for `num_vars` variables.
    pub fn new(num_vars: u32) -> Self {
        VarHeap {
            heap: Vec::with_capacity(num_vars as usize),
            position: VarMap::new(num_vars, ABSENT),
        }
    }

    /// Number of variables currently in the heap.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether `v` is in the heap.
    pub fn contains(&self, v: Var) -> bool {
        self.position.get(v) != ABSENT
    }

    /// Inserts `v` if absent.
    pub fn insert(&mut self, v: Var, activity: &VarMap<f64>) {
        if self.contains(v) {
            return;
        }
        self.position.set(v, self.heap.len());
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with maximal activity.
    pub fn pop(&mut self, activity: &VarMap<f64>) -> Option<Var> {
        let top = self.heap.first().copied()?;
        let last = self.heap.pop()?;
        self.position.set(top, ABSENT);
        if let Some(root) = self.heap.first_mut() {
            *root = last;
            self.position.set(last, 0);
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order after `v`'s activity increased.
    pub fn update(&mut self, v: Var, activity: &VarMap<f64>) {
        let pos = self.position.get(v);
        if pos != ABSENT {
            self.sift_up(pos, activity);
        }
    }

    fn key(&self, i: usize, activity: &VarMap<f64>) -> f64 {
        activity.get(at(&self.heap, i))
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position.set(at(&self.heap, a), a);
        self.position.set(at(&self.heap, b), b);
    }

    fn sift_up(&mut self, mut i: usize, activity: &VarMap<f64>) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.key(i, activity) <= self.key(parent, activity) {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &VarMap<f64>) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.key(l, activity) > self.key(best, activity) {
                best = l;
            }
            if r < self.heap.len() && self.key(r, activity) > self.key(best, activity) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    /// Verifies the heap-order property and the position-table inverse.
    ///
    /// Shared by the unit tests below and the runtime invariant auditor
    /// (`check.rs`); returns a description of the first violation found.
    pub(crate) fn check_invariant(&self, activity: &VarMap<f64>) -> Result<(), String> {
        for i in 1..self.heap.len() {
            let parent = (i - 1) / 2;
            if self.key(parent, activity) < self.key(i, activity) {
                return Err(format!(
                    "heap order violated at slot {i}: parent key {} < child key {}",
                    self.key(parent, activity),
                    self.key(i, activity)
                ));
            }
        }
        for (i, &v) in self.heap.iter().enumerate() {
            if self.position.get(v) != i {
                return Err(format!(
                    "position table stale: variable {} at slot {i} recorded at {}",
                    v.index(),
                    self.position.get(v)
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(h: &VarHeap, activity: &VarMap<f64>) {
        if let Err(e) = h.check_invariant(activity) {
            panic!("heap invariant broken: {e}");
        }
    }

    #[test]
    fn pops_in_activity_order() {
        let activity = VarMap::from_vec(vec![0.5, 2.0, 1.0, 3.0]);
        let mut h = VarHeap::new(4);
        for i in 0..4 {
            h.insert(Var::new(i), &activity);
        }
        check(&h, &activity);
        let order: Vec<u32> = std::iter::from_fn(|| h.pop(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = VarMap::new(3, 1.0);
        let mut h = VarHeap::new(3);
        h.insert(Var::new(1), &activity);
        h.insert(Var::new(1), &activity);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn update_after_bump() {
        let mut activity = VarMap::from_vec(vec![1.0, 2.0, 3.0]);
        let mut h = VarHeap::new(3);
        for i in 0..3 {
            h.insert(Var::new(i), &activity);
        }
        activity.set(Var::new(0), 10.0);
        h.update(Var::new(0), &activity);
        check(&h, &activity);
        assert_eq!(h.pop(&activity), Some(Var::new(0)));
    }

    #[test]
    fn reinsert_after_pop() {
        let activity = VarMap::from_vec(vec![1.0, 2.0]);
        let mut h = VarHeap::new(2);
        h.insert(Var::new(0), &activity);
        h.insert(Var::new(1), &activity);
        let top = h.pop(&activity).expect("non-empty heap");
        assert!(!h.contains(top));
        h.insert(top, &activity);
        assert!(h.contains(top));
        check(&h, &activity);
    }

    #[test]
    fn randomized_against_invariant() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let n = 64u32;
        let mut activity = VarMap::from_vec((0..n).map(|_| rng.gen::<f64>()).collect());
        let mut h = VarHeap::new(n);
        for _ in 0..2000 {
            match rng.gen_range(0..4) {
                0 => h.insert(Var::new(rng.gen_range(0..n)), &activity),
                1 => {
                    let _ = h.pop(&activity);
                }
                _ => {
                    let v = Var::new(rng.gen_range(0..n));
                    *activity.get_mut(v) += rng.gen::<f64>();
                    h.update(v, &activity);
                }
            }
            check(&h, &activity);
        }
    }
}
