//! Solver configuration, resource budgets, and results.

use crate::{Branching, PolicyKind, RestartStrategy};
use std::time::{Duration, Instant};

/// Tunable parameters of the CDCL solver.
///
/// The defaults are scaled for the laptop-sized instances produced by
/// `sat-gen` (10²–10⁴ variables): reductions happen early and often so the
/// clause-deletion policy — the object of study — is exercised many times
/// per solve.
///
/// # Examples
///
/// ```
/// use sat_solver::{PolicyKind, SolverConfig};
/// let cfg = SolverConfig {
///     policy: PolicyKind::PropFreq,
///     ..SolverConfig::default()
/// };
/// assert_eq!(cfg.policy, PolicyKind::PropFreq);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Which clause-deletion policy scores reducible clauses.
    pub policy: PolicyKind,
    /// Decision-variable selection heuristic.
    pub branching: Branching,
    /// Restart scheduling.
    pub restart: RestartStrategy,
    /// Variable-activity decay factor (EVSIDS), in `(0, 1)`.
    pub var_decay: f64,
    /// Clause-activity decay factor, in `(0, 1)`.
    pub clause_decay: f64,
    /// Learned clauses kept unconditionally when their glue is at most this
    /// ("non-reducible" tier in Kissat's terminology).
    pub tier1_glue: u32,
    /// First reduction triggers when this many reducible learned clauses
    /// have accumulated.
    pub reduce_init: usize,
    /// The trigger grows by this amount after every reduction.
    pub reduce_inc: usize,
    /// Fraction of reducible clauses deleted at each reduction, in `(0, 1]`.
    pub reduce_fraction: f64,
    /// Initial phase for unassigned variables without a saved phase.
    pub initial_phase: bool,
    /// Random seed (reserved for randomized decision tie-breaking).
    pub seed: u64,
    /// Enables in-search inprocessing rounds (subsumption, self-subsuming
    /// resolution, bounded variable elimination, vivification) at restart
    /// boundaries. Off by default: the perf-trajectory gate pins the
    /// default configuration's search exactly, and inprocessing reshapes
    /// the clause database mid-search.
    pub inprocess: bool,
    /// When inprocessing is enabled, a round runs once this many restarts
    /// have elapsed since the previous round.
    pub inprocess_interval: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            policy: PolicyKind::Default,
            branching: Branching::default(),
            restart: RestartStrategy::default(),
            var_decay: 0.95,
            clause_decay: 0.999,
            tier1_glue: 2,
            reduce_init: 100,
            reduce_inc: 75,
            reduce_fraction: 0.5,
            initial_phase: false,
            seed: 0,
            inprocess: false,
            inprocess_interval: 10,
        }
    }
}

impl SolverConfig {
    /// A configuration using the given deletion policy and defaults
    /// everywhere else.
    pub fn with_policy(policy: PolicyKind) -> Self {
        SolverConfig {
            policy,
            ..Self::default()
        }
    }
}

/// Resource limits for one `solve` call.
///
/// The solver checks limits cooperatively at every conflict and every
/// decision; when a limit is hit it returns [`SolveResult::Unknown`]
/// with stats intact and records the cause (see
/// [`Solver::stop_cause`](crate::Solver::stop_cause)). `Budget::default()`
/// is unlimited.
///
/// The wall-clock deadline is an *absolute* instant so that one budget
/// value shared by every portfolio worker means one common deadline,
/// no matter when each worker thread starts. The memory ceiling is
/// approximate: it bounds the solver's dominant allocations (clause
/// database, per-variable state, watch lists) as estimated by
/// [`Solver::approx_memory_bytes`](crate::Solver::approx_memory_bytes),
/// not the process RSS.
///
/// # Examples
///
/// ```
/// use sat_solver::Budget;
/// use std::time::Duration;
/// let b = Budget::conflicts(10_000).with_deadline_in(Duration::from_secs(5));
/// assert_eq!(b.max_conflicts, Some(10_000));
/// assert_eq!(b.max_propagations, None);
/// assert!(b.deadline.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Stop after this many conflicts.
    pub max_conflicts: Option<u64>,
    /// Stop after this many propagations.
    pub max_propagations: Option<u64>,
    /// Stop once this wall-clock instant has passed.
    pub deadline: Option<Instant>,
    /// Stop once the solver's approximate memory footprint exceeds this
    /// many bytes.
    pub max_memory_bytes: Option<u64>,
}

impl Budget {
    /// Unlimited budget.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Limit by conflict count only.
    pub fn conflicts(n: u64) -> Self {
        Budget {
            max_conflicts: Some(n),
            ..Budget::default()
        }
    }

    /// Limit by propagation count only.
    pub fn propagations(n: u64) -> Self {
        Budget {
            max_propagations: Some(n),
            ..Budget::default()
        }
    }

    /// Limit by wall clock only: the deadline is `timeout` from now.
    pub fn wall_clock(timeout: Duration) -> Self {
        Budget::default().with_deadline_in(timeout)
    }

    /// Limit by approximate memory footprint only.
    pub fn memory_bytes(n: u64) -> Self {
        Budget {
            max_memory_bytes: Some(n),
            ..Budget::default()
        }
    }

    /// Returns `self` with the deadline set to `timeout` from now.
    /// Saturates at the far future if the addition overflows.
    pub fn with_deadline_in(mut self, timeout: Duration) -> Self {
        let now = Instant::now();
        self.deadline = Some(now.checked_add(timeout).unwrap_or(now));
        self
    }

    /// Returns `self` with the given approximate memory ceiling.
    pub fn with_memory_limit(mut self, bytes: u64) -> Self {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// Whether the given counters exhaust this budget (counter limits
    /// only; see [`Budget::check`] for the full check).
    pub fn exhausted(&self, conflicts: u64, propagations: u64) -> bool {
        self.max_conflicts.is_some_and(|m| conflicts >= m)
            || self.max_propagations.is_some_and(|m| propagations >= m)
    }

    /// Full budget check: counters, wall-clock deadline, and memory
    /// ceiling, in that order. Returns the first exhausted limit.
    ///
    /// `Instant::now()` is only consulted when a deadline is set, so
    /// counter-only budgets (the default) stay syscall-free and their
    /// runs remain bit-reproducible.
    pub fn check(
        &self,
        conflicts: u64,
        propagations: u64,
        memory_bytes: impl FnOnce() -> u64,
    ) -> Option<StopCause> {
        if self.max_conflicts.is_some_and(|m| conflicts >= m) {
            return Some(StopCause::Conflicts);
        }
        if self.max_propagations.is_some_and(|m| propagations >= m) {
            return Some(StopCause::Propagations);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(StopCause::Deadline);
        }
        if self.max_memory_bytes.is_some_and(|m| memory_bytes() > m) {
            return Some(StopCause::Memory);
        }
        None
    }
}

/// Why a `solve` call returned [`SolveResult::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The conflict budget was exhausted.
    Conflicts,
    /// The propagation budget was exhausted.
    Propagations,
    /// The wall-clock deadline passed.
    Deadline,
    /// The approximate memory ceiling was exceeded.
    Memory,
    /// An external stop signal fired (e.g. another portfolio worker won).
    External,
}

impl StopCause {
    /// Stable lowercase name, used in CLI output and telemetry records.
    pub fn as_str(&self) -> &'static str {
        match self {
            StopCause::Conflicts => "conflicts",
            StopCause::Propagations => "propagations",
            StopCause::Deadline => "deadline",
            StopCause::Memory => "memory",
            StopCause::External => "external",
        }
    }
}

/// Outcome of a `solve` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable, with a model assigning every variable
    /// (`model[v]` is the value of variable index `v`).
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
    /// The resource budget was exhausted before a verdict.
    Unknown,
}

impl SolveResult {
    /// Whether the result is [`SolveResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// Whether the result is [`SolveResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat)
    }

    /// Whether the result is [`SolveResult::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, SolveResult::Unknown)
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Counters accumulated during solving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Decisions made.
    pub decisions: u64,
    /// Literals assigned by unit propagation. This is the paper's primary
    /// deterministic cost metric for labelling (Section 5.1).
    pub propagations: u64,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clause-database reductions performed.
    pub reductions: u64,
    /// Learned clauses added (before deletions).
    pub learned_clauses: u64,
    /// Learned clauses deleted by reductions.
    pub deleted_clauses: u64,
    /// Literals removed by learned-clause minimization.
    pub minimized_lits: u64,
    /// Sum of glue values of all learned clauses (for averages).
    pub glue_sum: u64,
}

impl SolverStats {
    /// Mean glue over all learned clauses, or 0.0 when none were learned.
    pub fn avg_glue(&self) -> f64 {
        if self.learned_clauses == 0 {
            0.0
        } else {
            self.glue_sum as f64 / self.learned_clauses as f64
        }
    }

    /// Per-field difference `self - before`, saturating at zero.
    ///
    /// An incremental session's solver accumulates counters across its
    /// whole lifetime; the delta attributes work to one solve call.
    pub fn delta_since(&self, before: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(before.decisions),
            propagations: self.propagations.saturating_sub(before.propagations),
            conflicts: self.conflicts.saturating_sub(before.conflicts),
            restarts: self.restarts.saturating_sub(before.restarts),
            reductions: self.reductions.saturating_sub(before.reductions),
            learned_clauses: self.learned_clauses.saturating_sub(before.learned_clauses),
            deleted_clauses: self.deleted_clauses.saturating_sub(before.deleted_clauses),
            minimized_lits: self.minimized_lits.saturating_sub(before.minimized_lits),
            glue_sum: self.glue_sum.saturating_sub(before.glue_sum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_exhaustion() {
        let b = Budget {
            max_conflicts: Some(10),
            max_propagations: Some(100),
            ..Budget::default()
        };
        assert!(!b.exhausted(9, 99));
        assert!(b.exhausted(10, 0));
        assert!(b.exhausted(0, 100));
        assert!(!Budget::unlimited().exhausted(u64::MAX - 1, u64::MAX - 1));
    }

    #[test]
    fn check_reports_the_first_exhausted_limit() {
        let b = Budget {
            max_conflicts: Some(10),
            max_propagations: Some(100),
            ..Budget::default()
        };
        assert_eq!(b.check(9, 99, || 0), None);
        assert_eq!(b.check(10, 0, || 0), Some(StopCause::Conflicts));
        assert_eq!(b.check(0, 100, || 0), Some(StopCause::Propagations));
    }

    #[test]
    fn check_honors_deadline_and_memory() {
        let past = Budget::wall_clock(Duration::from_secs(0));
        assert_eq!(past.check(0, 0, || 0), Some(StopCause::Deadline));
        let future = Budget::wall_clock(Duration::from_secs(3600));
        assert_eq!(future.check(0, 0, || 0), None);

        let mem = Budget::memory_bytes(1000);
        assert_eq!(mem.check(0, 0, || 1000), None);
        assert_eq!(mem.check(0, 0, || 1001), Some(StopCause::Memory));
    }

    #[test]
    fn memory_probe_is_lazy_without_a_ceiling() {
        // A counter-only budget must never evaluate the memory estimate.
        let b = Budget::conflicts(5);
        assert_eq!(b.check(0, 0, || panic!("memory probe must not run")), None);
    }

    #[test]
    fn stop_cause_names_are_stable() {
        for (cause, name) in [
            (StopCause::Conflicts, "conflicts"),
            (StopCause::Propagations, "propagations"),
            (StopCause::Deadline, "deadline"),
            (StopCause::Memory, "memory"),
            (StopCause::External, "external"),
        ] {
            assert_eq!(cause.as_str(), name);
        }
    }

    #[test]
    fn stats_delta_is_per_field_and_saturating() {
        let before = SolverStats {
            decisions: 10,
            propagations: 100,
            conflicts: 5,
            ..SolverStats::default()
        };
        let after = SolverStats {
            decisions: 15,
            propagations: 180,
            conflicts: 5,
            learned_clauses: 3,
            ..SolverStats::default()
        };
        let delta = after.delta_since(&before);
        assert_eq!(delta.decisions, 5);
        assert_eq!(delta.propagations, 80);
        assert_eq!(delta.conflicts, 0);
        assert_eq!(delta.learned_clauses, 3);
        // A (theoretical) regression saturates instead of wrapping.
        assert_eq!(before.delta_since(&after).decisions, 0);
    }

    #[test]
    fn result_accessors() {
        let sat = SolveResult::Sat(vec![true]);
        assert!(sat.is_sat() && !sat.is_unsat() && !sat.is_unknown());
        assert_eq!(sat.model(), Some(&[true][..]));
        assert_eq!(SolveResult::Unsat.model(), None);
        assert!(SolveResult::Unknown.is_unknown());
    }

    #[test]
    fn avg_glue_handles_zero() {
        let mut s = SolverStats::default();
        assert_eq!(s.avg_glue(), 0.0);
        s.learned_clauses = 4;
        s.glue_sum = 10;
        assert_eq!(s.avg_glue(), 2.5);
    }
}
