//! SatELite-style preprocessing: top-level unit propagation, pure-literal
//! elimination, subsumption, self-subsuming resolution (strengthening),
//! and bounded variable elimination (BVE) with model reconstruction.
//!
//! Kissat runs these simplifications before and during search; here they
//! are offered as a standalone pass producing an equisatisfiable, usually
//! much smaller formula plus a [`Reconstruction`] that extends any model of
//! the simplified formula back to the original variables.

use cnf::{Clause, Cnf, Lit, Var};
use std::collections::VecDeque;

/// Limits for one preprocessing pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreprocessConfig {
    /// Eliminate a variable only if it occurs at most this often in each
    /// polarity (bounds the resolvent blow-up check's cost).
    pub bve_occurrence_limit: usize,
    /// A variable is eliminated only when the number of non-tautological
    /// resolvents does not exceed the number of removed clauses plus this
    /// slack.
    pub bve_growth: usize,
    /// Maximum fixpoint rounds.
    pub max_rounds: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            bve_occurrence_limit: 10,
            bve_growth: 0,
            max_rounds: 10,
        }
    }
}

/// How to restore original-variable values from a model of the simplified
/// formula.
#[derive(Debug, Clone, Default)]
pub struct Reconstruction {
    /// `(pivot literal, saved clauses)` in elimination order: during
    /// reconstruction (processed in reverse) the pivot's variable is set so
    /// every saved clause is satisfied.
    steps: Vec<(Lit, Vec<Clause>)>,
    /// Literals fixed by top-level propagation or pure-literal elimination.
    fixed: Vec<Lit>,
}

impl Reconstruction {
    /// Extends `model` (indexed by original variable) so it satisfies the
    /// original formula, given that it satisfies the simplified one.
    ///
    /// # Panics
    ///
    /// Panics if `model` is shorter than the original variable count.
    pub fn extend_model(&self, model: &mut [bool]) {
        for &l in &self.fixed {
            model[l.var().index() as usize] = l.is_positive();
        }
        for (pivot, clauses) in self.steps.iter().rev() {
            let v = pivot.var().index() as usize;
            // Try the pivot's negation first; if some saved clause is then
            // falsified, the pivot polarity is forced.
            model[v] = pivot.is_negated(); // pivot literal false
            let all_satisfied = clauses.iter().all(|c| {
                c.lits()
                    .iter()
                    .any(|l| l.eval(model[l.var().index() as usize]))
            });
            if !all_satisfied {
                model[v] = pivot.is_positive();
            }
        }
    }

    /// Number of eliminated variables.
    pub fn num_eliminated(&self) -> usize {
        self.steps.len()
    }

    /// Number of top-level fixed literals.
    pub fn num_fixed(&self) -> usize {
        self.fixed.len()
    }
}

/// Outcome of preprocessing.
#[derive(Debug, Clone)]
pub enum Preprocessed {
    /// The formula was refuted outright.
    Unsat,
    /// The simplified formula (same variable numbering; eliminated
    /// variables simply no longer occur) and its reconstruction.
    Simplified {
        /// The equisatisfiable simplified formula.
        cnf: Cnf,
        /// Model-extension data.
        reconstruction: Reconstruction,
    },
}

/// Working state: clause list with lazy deletion plus occurrence lists.
struct State {
    clauses: Vec<Option<Clause>>,
    /// occurrences[lit.code()] = indices of clauses containing lit
    /// (may contain stale entries; filtered on read).
    occurrences: Vec<Vec<usize>>,
    /// Assigned top-level values.
    assignment: Vec<Option<bool>>,
    queue: VecDeque<Lit>,
}

impl State {
    fn new(formula: &Cnf) -> Self {
        let n = formula.num_vars() as usize;
        let mut s = State {
            clauses: Vec::with_capacity(formula.num_clauses()),
            occurrences: vec![Vec::new(); 2 * n],
            assignment: vec![None; n],
            queue: VecDeque::new(),
        };
        for clause in formula.clauses() {
            let mut c = clause.clone();
            if c.normalize() {
                continue; // tautology
            }
            s.insert(c);
        }
        s
    }

    fn insert(&mut self, c: Clause) {
        let idx = self.clauses.len();
        for &l in c.lits() {
            self.occurrences[l.code() as usize].push(idx);
        }
        self.clauses.push(Some(c));
    }

    fn remove(&mut self, idx: usize) -> Option<Clause> {
        self.clauses[idx].take()
    }

    /// Live clause indices containing `l`.
    fn occ(&self, l: Lit) -> Vec<usize> {
        self.occurrences[l.code() as usize]
            .iter()
            .copied()
            .filter(|&i| self.clauses[i].as_ref().is_some_and(|c| c.contains(l)))
            .collect()
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assignment[l.var().index() as usize].map(|v| l.eval(v))
    }

    /// Assigns a top-level literal and queues it for propagation.
    /// Returns false on conflict.
    fn assign(&mut self, l: Lit) -> bool {
        match self.value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                self.assignment[l.var().index() as usize] = Some(l.is_positive());
                self.queue.push_back(l);
                true
            }
        }
    }

    /// Top-level unit propagation over occurrence lists.
    /// Returns false on conflict.
    fn propagate(&mut self) -> bool {
        while let Some(l) = self.queue.pop_front() {
            // Clauses satisfied by l disappear; clauses containing ¬l shrink.
            for idx in self.occ(l) {
                self.remove(idx);
            }
            for idx in self.occ(!l) {
                let Some(mut c) = self.remove(idx) else {
                    continue;
                };
                c.lits_mut().retain(|&x| x != !l);
                match c.len() {
                    0 => return false,
                    1 => {
                        if !self.assign(c[0]) {
                            return false;
                        }
                    }
                    _ => self.insert(c),
                }
            }
        }
        true
    }

    /// All live clauses.
    fn live(&self) -> impl Iterator<Item = (usize, &Clause)> {
        self.clauses
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (i, c)))
    }
}

/// Whether every literal of `small` occurs in `big` (both normalized).
fn subsumes(small: &Clause, big: &Clause) -> bool {
    small.len() <= big.len() && small.lits().iter().all(|&l| big.contains(l))
}

/// The resolvent of `a` (containing `pivot`) and `b` (containing `!pivot`),
/// or `None` if it is tautological.
fn resolve(a: &Clause, b: &Clause, pivot: Lit) -> Option<Clause> {
    let mut out = Clause::new();
    for &l in a.lits() {
        if l != pivot {
            out.push(l);
        }
    }
    for &l in b.lits() {
        if l != !pivot && !out.contains(l) {
            out.push(l);
        }
    }
    if out.normalize() {
        None
    } else {
        Some(out)
    }
}

/// Runs the full preprocessing pipeline on `formula`.
///
/// # Examples
///
/// ```
/// use sat_solver::{preprocess, Preprocessed, PreprocessConfig, Solver};
/// let f = cnf::parse_dimacs_str("p cnf 3 3\n1 0\n-1 2 0\n-2 3 0\n")?;
/// match preprocess(&f, &PreprocessConfig::default()) {
///     Preprocessed::Simplified { cnf, reconstruction } => {
///         // everything was fixed by unit propagation
///         assert_eq!(cnf.num_clauses(), 0);
///         let mut model = vec![false; 3];
///         reconstruction.extend_model(&mut model);
///         assert!(cnf::verify_model(&f, &model).is_ok());
///     }
///     Preprocessed::Unsat => unreachable!(),
/// }
/// # Ok::<(), cnf::ParseDimacsError>(())
/// ```
pub fn preprocess(formula: &Cnf, config: &PreprocessConfig) -> Preprocessed {
    let mut st = State::new(formula);
    let mut rec = Reconstruction::default();

    // Seed propagation with input units.
    for (i, c) in st.live().map(|(i, c)| (i, c.clone())).collect::<Vec<_>>() {
        if c.is_unit() {
            st.remove(i);
            if !st.assign(c[0]) {
                return Preprocessed::Unsat;
            }
        }
    }
    if !st.propagate() {
        return Preprocessed::Unsat;
    }

    for _round in 0..config.max_rounds {
        let mut changed = false;

        // --- subsumption + self-subsuming resolution -----------------
        let live: Vec<usize> = st.live().map(|(i, _)| i).collect();
        for &i in &live {
            let Some(c) = st.clauses[i].clone() else {
                continue;
            };
            // find candidate superset clauses through the rarest literal
            let Some(&anchor) = c
                .lits()
                .iter()
                .min_by_key(|l| st.occurrences[l.code() as usize].len())
            else {
                continue;
            };
            for j in st.occ(anchor) {
                if i == j {
                    continue;
                }
                let Some(d) = st.clauses[j].clone() else {
                    continue;
                };
                if subsumes(&c, &d) {
                    st.remove(j);
                    changed = true;
                }
            }
            // strengthening: c = (l ∨ A) strengthens d = (¬l ∨ A ∨ B) to (A ∨ B)
            for &l in c.lits() {
                let mut c_flipped = c.clone();
                for x in c_flipped.lits_mut() {
                    if *x == l {
                        *x = !l;
                    }
                }
                c_flipped.normalize();
                for j in st.occ(!l) {
                    if i == j {
                        continue;
                    }
                    let Some(d) = st.clauses[j].clone() else {
                        continue;
                    };
                    if subsumes(&c_flipped, &d) {
                        let Some(mut d) = st.remove(j) else { continue };
                        d.lits_mut().retain(|&x| x != !l);
                        changed = true;
                        match d.len() {
                            0 => return Preprocessed::Unsat,
                            1 => {
                                if !st.assign(d[0]) || !st.propagate() {
                                    return Preprocessed::Unsat;
                                }
                            }
                            _ => st.insert(d),
                        }
                    }
                }
            }
        }

        // --- pure literals --------------------------------------------
        // Saturate top-level units first: purity is judged from the
        // occurrence lists, and a pending unit still hides clauses that
        // propagation is about to remove (or strengthen), so counting
        // occurrences before the fixpoint could mislabel a literal pure.
        if !st.propagate() {
            return Preprocessed::Unsat;
        }
        for v in 0..st.assignment.len() {
            if st.assignment[v].is_some() {
                continue;
            }
            let var = Var::new(v as u32);
            let pos = st.occ(var.positive()).len();
            let neg = st.occ(var.negative()).len();
            if pos + neg == 0 {
                continue;
            }
            if pos == 0 || neg == 0 {
                let pure = var.lit(pos == 0);
                for idx in st.occ(pure) {
                    st.remove(idx);
                }
                st.assignment[v] = Some(pure.is_positive());
                rec.fixed.push(pure);
                changed = true;
            }
        }

        // --- bounded variable elimination ------------------------------
        for v in 0..st.assignment.len() {
            if st.assignment[v].is_some() {
                continue;
            }
            let var = Var::new(v as u32);
            let pos_idx = st.occ(var.positive());
            let neg_idx = st.occ(var.negative());
            if pos_idx.is_empty() && neg_idx.is_empty() {
                continue;
            }
            if pos_idx.len() > config.bve_occurrence_limit
                || neg_idx.len() > config.bve_occurrence_limit
            {
                continue;
            }
            let pos_clauses: Vec<Clause> = pos_idx
                .iter()
                .filter_map(|&i| st.clauses[i].clone())
                .collect();
            let neg_clauses: Vec<Clause> = neg_idx
                .iter()
                .filter_map(|&i| st.clauses[i].clone())
                .collect();
            let mut resolvents = Vec::new();
            let mut too_many = false;
            let budget = pos_clauses.len() + neg_clauses.len() + config.bve_growth;
            'outer: for a in &pos_clauses {
                for b in &neg_clauses {
                    if let Some(r) = resolve(a, b, var.positive()) {
                        resolvents.push(r);
                        if resolvents.len() > budget {
                            too_many = true;
                            break 'outer;
                        }
                    }
                }
            }
            if too_many {
                continue;
            }
            // Eliminate: remove originals, record them, add resolvents.
            let mut saved = Vec::new();
            for &i in pos_idx.iter().chain(&neg_idx) {
                if let Some(c) = st.remove(i) {
                    saved.push(c);
                }
            }
            rec.steps.push((var.positive(), saved));
            st.assignment[v] = Some(true); // placeholder; fixed by reconstruction
            for r in resolvents {
                match r.len() {
                    0 => return Preprocessed::Unsat,
                    1 => {
                        if !st.assign(r[0]) || !st.propagate() {
                            return Preprocessed::Unsat;
                        }
                    }
                    _ => st.insert(r),
                }
            }
            changed = true;
        }

        if !st.propagate() {
            return Preprocessed::Unsat;
        }
        if !changed {
            break;
        }
    }

    // Collect survivors; record top-level assignments for reconstruction.
    let mut cnf = Cnf::new(formula.num_vars());
    for (_, c) in st.live() {
        cnf.add_clause(c.clone());
    }
    for (v, val) in st.assignment.iter().enumerate() {
        if let Some(val) = *val {
            let var = Var::new(v as u32);
            // variables consumed by BVE are reconstructed by their step,
            // not as fixed literals
            if !rec.steps.iter().any(|(p, _)| p.var() == var)
                && !rec.fixed.iter().any(|l| l.var() == var)
            {
                rec.fixed.push(var.lit(!val));
            }
        }
    }
    Preprocessed::Simplified {
        cnf,
        reconstruction: rec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::verify_model;

    fn cnf_of(clauses: &[&[i32]]) -> Cnf {
        let mut f = Cnf::new(0);
        for c in clauses {
            f.add_dimacs(c);
        }
        f
    }

    fn roundtrip(f: &Cnf) -> Option<Vec<bool>> {
        match preprocess(f, &PreprocessConfig::default()) {
            Preprocessed::Unsat => None,
            Preprocessed::Simplified {
                cnf,
                reconstruction,
            } => {
                let mut solver = crate::Solver::from_cnf(&cnf);
                match solver.solve() {
                    crate::SolveResult::Sat(mut model) => {
                        model.resize(f.num_vars() as usize, false);
                        reconstruction.extend_model(&mut model);
                        Some(model)
                    }
                    crate::SolveResult::Unsat => None,
                    crate::SolveResult::Unknown => unreachable!("unlimited"),
                }
            }
        }
    }

    #[test]
    fn units_are_fully_propagated() {
        let f = cnf_of(&[&[1], &[-1, 2], &[-2, 3]]);
        match preprocess(&f, &PreprocessConfig::default()) {
            Preprocessed::Simplified {
                cnf,
                reconstruction,
            } => {
                assert_eq!(cnf.num_clauses(), 0);
                let mut m = vec![false; 3];
                reconstruction.extend_model(&mut m);
                assert!(verify_model(&f, &m).is_ok());
            }
            Preprocessed::Unsat => panic!("satisfiable"),
        }
    }

    #[test]
    fn unit_conflict_is_unsat() {
        let f = cnf_of(&[&[1], &[-1]]);
        assert!(matches!(
            preprocess(&f, &PreprocessConfig::default()),
            Preprocessed::Unsat
        ));
    }

    #[test]
    fn subsumption_removes_supersets() {
        let f = cnf_of(&[&[1, 2], &[1, 2, 3], &[1, 2, 4]]);
        match preprocess(&f, &PreprocessConfig::default()) {
            Preprocessed::Simplified { cnf, .. } => {
                // (1 2) subsumes both longer clauses; then x1 (or x2) may be
                // eliminated/pure — at most one clause remains.
                assert!(cnf.num_clauses() <= 1);
            }
            Preprocessed::Unsat => panic!("satisfiable"),
        }
    }

    #[test]
    fn pure_literals_are_assigned() {
        // x1 occurs only positively
        let f = cnf_of(&[&[1, 2], &[1, -2]]);
        let m = roundtrip(&f).expect("sat");
        assert!(verify_model(&f, &m).is_ok());
        assert!(m[0], "pure literal takes its occurring polarity");
    }

    #[test]
    fn bve_preserves_models() {
        // x2 is resolvable: (1 2)(−2 3) → (1 3)
        let f = cnf_of(&[&[1, 2], &[-2, 3], &[-1, -3]]);
        let m = roundtrip(&f).expect("sat");
        assert!(verify_model(&f, &m).is_ok());
    }

    #[test]
    fn php_stays_unsat_after_preprocessing() {
        let f = super::tests_support::php(4, 3);
        match preprocess(&f, &PreprocessConfig::default()) {
            Preprocessed::Unsat => {}
            Preprocessed::Simplified { cnf, .. } => {
                assert!(crate::Solver::from_cnf(&cnf).solve().is_unsat());
            }
        }
    }

    #[test]
    fn empty_formula_passes_through() {
        let f = Cnf::new(3);
        match preprocess(&f, &PreprocessConfig::default()) {
            Preprocessed::Simplified {
                cnf,
                reconstruction,
            } => {
                assert_eq!(cnf.num_clauses(), 0);
                assert_eq!(reconstruction.num_eliminated(), 0);
            }
            Preprocessed::Unsat => panic!("trivially sat"),
        }
    }

    #[test]
    fn strengthening_shortens_clauses() {
        // (1 2) strengthens (−1 2 3) to (2 3)
        let f = cnf_of(&[&[1, 2], &[-1, 2, 3], &[-2, 4], &[-4, -2, 1]]);
        let m = roundtrip(&f).expect("sat");
        assert!(verify_model(&f, &m).is_ok());
    }

    #[test]
    fn pending_units_do_not_mislabel_pure_literals() {
        // Regression for the unit-saturation/pure-literal ordering: the
        // unit x1 is about to delete (1 2) and strengthen (−1 −2 3) to
        // (−2 3); only after that fixpoint is x2's purity (negative-only)
        // visible. Judged before saturation, x2 looks mixed-polarity.
        let f = cnf_of(&[&[1], &[1, 2], &[-1, -2, 3], &[-2, -3]]);
        let m = roundtrip(&f).expect("sat");
        assert!(verify_model(&f, &m).is_ok());
    }

    // Regression proptest pinning the preprocessing contract on random
    // unit-heavy formulas: the simplified formula is equisatisfiable, and
    // on SAT the reconstruction round-trips to a model of the original.
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]
            #[test]
            fn preprocess_equisatisfiable_and_reconstructs(
                raw in proptest::collection::vec(
                    proptest::collection::vec(-6i32..=6, 1..4),
                    1..24,
                )
            ) {
                let mut f = Cnf::new(0);
                for c in &raw {
                    // 0 is not a literal in the DIMACS encoding; dropping
                    // it biases toward the short, unit-heavy clauses this
                    // regression targets.
                    let c: Vec<i32> = c.iter().copied().filter(|&l| l != 0).collect();
                    if !c.is_empty() {
                        f.add_dimacs(&c);
                    }
                }
                let expected_sat = crate::Solver::from_cnf(&f).solve().is_sat();
                match roundtrip(&f) {
                    Some(m) => {
                        prop_assert!(expected_sat, "preprocessing flipped UNSAT to SAT");
                        prop_assert!(verify_model(&f, &m).is_ok(), "bad reconstruction");
                    }
                    None => prop_assert!(!expected_sat, "preprocessing flipped SAT to UNSAT"),
                }
            }
        }
    }
}

/// Test-only helpers shared across the crate's test modules.
#[cfg(test)]
pub(crate) mod tests_support {
    use cnf::{Clause, Cnf, Var};

    /// A tiny pigeonhole generator (duplicated from `sat-gen` to avoid a
    /// dependency cycle in tests).
    pub fn php(pigeons: u32, holes: u32) -> Cnf {
        let var = |p: u32, h: u32| Var::new(p * holes + h);
        let mut f = Cnf::new(pigeons * holes);
        for p in 0..pigeons {
            f.add_clause((0..holes).map(|h| var(p, h).positive()).collect());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    f.add_clause(Clause::from_lits(vec![
                        var(p1, h).negative(),
                        var(p2, h).negative(),
                    ]));
                }
            }
        }
        f
    }
}
