//! Three-valued logic for partial assignments.

use std::fmt;

/// A lifted Boolean: true, false, or unassigned.
///
/// # Examples
///
/// ```
/// use sat_solver::LBool;
/// assert_eq!(LBool::from(true), LBool::True);
/// assert_eq!(LBool::Undef.to_bool(), None);
/// assert_eq!(!LBool::True, LBool::False);
/// assert_eq!(!LBool::Undef, LBool::Undef);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts to `Option<bool>`: `None` when unassigned.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Whether the value is assigned (not [`LBool::Undef`]).
    #[inline]
    pub fn is_assigned(self) -> bool {
        self != LBool::Undef
    }

    /// XOR with a Boolean: flips `True`/`False` when `flip` is true, keeps
    /// `Undef` untouched. Used to evaluate a literal from its variable value.
    #[inline]
    pub fn xor(self, flip: bool) -> LBool {
        if flip {
            !self
        } else {
            self
        }
    }
}

impl From<bool> for LBool {
    #[inline]
    fn from(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

impl std::ops::Not for LBool {
    type Output = LBool;

    #[inline]
    fn not(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

impl fmt::Display for LBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LBool::True => write!(f, "⊤"),
            LBool::False => write!(f, "⊥"),
            LBool::Undef => write!(f, "?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_is_involutive_on_assigned() {
        assert_eq!(!!LBool::True, LBool::True);
        assert_eq!(!!LBool::False, LBool::False);
        assert_eq!(!LBool::Undef, LBool::Undef);
    }

    #[test]
    fn xor_evaluates_literals() {
        // positive literal: no flip; negative literal: flip
        assert_eq!(LBool::True.xor(false), LBool::True);
        assert_eq!(LBool::True.xor(true), LBool::False);
        assert_eq!(LBool::Undef.xor(true), LBool::Undef);
    }

    #[test]
    fn default_is_undef() {
        assert_eq!(LBool::default(), LBool::Undef);
        assert!(!LBool::default().is_assigned());
    }
}
