//! Restart strategies: Luby sequences and glue-EMA (Glucose-style).

/// The `i`-th element (1-based) of the Luby sequence
/// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
///
/// # Examples
///
/// ```
/// use sat_solver::luby;
/// let prefix: Vec<u64> = (1..=9).map(luby).collect();
/// assert_eq!(prefix, [1, 1, 2, 1, 1, 2, 4, 1, 1]);
/// ```
pub fn luby(i: u64) -> u64 {
    assert!(i >= 1, "the Luby sequence is 1-based");
    // MiniSat's formulation, adapted to a 1-based index.
    let mut x = i - 1;
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Restart scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RestartStrategy {
    /// Restart after `scale * luby(n)` conflicts since the last restart.
    Luby {
        /// Base conflict interval (Kissat/MiniSat use 100–1024).
        scale: u64,
    },
    /// Glucose-style: restart when the short-term average glue of learned
    /// clauses exceeds `margin` times the long-term average.
    GlueEma {
        /// Trigger threshold; Glucose uses 1.25.
        margin: f64,
        /// Minimum conflicts between restarts.
        min_interval: u64,
    },
    /// Never restart (for experiments).
    Never,
}

impl Default for RestartStrategy {
    fn default() -> Self {
        RestartStrategy::Luby { scale: 128 }
    }
}

/// Tracks conflicts and glue averages and decides when to restart.
#[derive(Debug, Clone)]
pub struct RestartScheduler {
    strategy: RestartStrategy,
    restarts: u64,
    conflicts_since_restart: u64,
    fast_ema: f64,
    slow_ema: f64,
    initialized: bool,
}

impl RestartScheduler {
    /// Creates a scheduler with the given strategy.
    pub fn new(strategy: RestartStrategy) -> Self {
        RestartScheduler {
            strategy,
            restarts: 0,
            conflicts_since_restart: 0,
            fast_ema: 0.0,
            slow_ema: 0.0,
            initialized: false,
        }
    }

    /// Number of restarts performed so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Records a conflict with the glue of the clause just learned and
    /// returns whether the solver should restart now.
    pub fn on_conflict(&mut self, glue: u32) -> bool {
        self.conflicts_since_restart += 1;
        let g = glue as f64;
        if self.initialized {
            self.fast_ema += (g - self.fast_ema) / 32.0;
            self.slow_ema += (g - self.slow_ema) / 4096.0;
        } else {
            self.fast_ema = g;
            self.slow_ema = g;
            self.initialized = true;
        }
        match self.strategy {
            RestartStrategy::Luby { scale } => {
                self.conflicts_since_restart >= scale * luby(self.restarts + 1)
            }
            RestartStrategy::GlueEma {
                margin,
                min_interval,
            } => {
                self.conflicts_since_restart >= min_interval
                    && self.fast_ema > margin * self.slow_ema
            }
            RestartStrategy::Never => false,
        }
    }

    /// Notifies the scheduler that a restart was performed.
    pub fn on_restart(&mut self) {
        self.restarts += 1;
        self.conflicts_since_restart = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }

    #[test]
    fn luby_powers() {
        // positions 2^k - 1 hold 2^(k-1)
        for k in 1..20 {
            assert_eq!(luby((1u64 << k) - 1), 1u64 << (k - 1));
        }
    }

    #[test]
    fn luby_scheduler_intervals() {
        let mut s = RestartScheduler::new(RestartStrategy::Luby { scale: 2 });
        let mut restart_points = Vec::new();
        for c in 1..=20u64 {
            if s.on_conflict(3) {
                restart_points.push(c);
                s.on_restart();
            }
        }
        // luby: 1,1,2,1,1,2,4 → intervals 2,2,4,2,2,4,8 → cumulative
        // 2,4,8,10,12,16,24; only points ≤ 20 are observed.
        assert_eq!(restart_points, vec![2, 4, 8, 10, 12, 16]);
    }

    #[test]
    fn glue_ema_restarts_on_degradation() {
        let mut s = RestartScheduler::new(RestartStrategy::GlueEma {
            margin: 1.25,
            min_interval: 10,
        });
        // long run of good (low) glue
        for _ in 0..2000 {
            assert!(!s.on_conflict(3) || s.conflicts_since_restart >= 10);
        }
        // now a burst of terrible glue should trigger
        let mut triggered = false;
        for _ in 0..200 {
            if s.on_conflict(30) {
                triggered = true;
                break;
            }
        }
        assert!(triggered);
    }

    #[test]
    fn never_strategy_never_restarts() {
        let mut s = RestartScheduler::new(RestartStrategy::Never);
        for _ in 0..10_000 {
            assert!(!s.on_conflict(10));
        }
        assert_eq!(s.restarts(), 0);
    }
}
