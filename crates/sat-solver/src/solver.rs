//! The CDCL solver engine.

use crate::clause_db::{ClauseDb, ClauseRef};
use crate::heap::VarHeap;
use crate::instrument::SolverTelemetry;
use crate::observer::SearchObserver;
use crate::proof::ProofLogger;
use crate::varmap::{at, LitMap, VarMap};
use crate::vmtf::VmtfQueue;
use crate::{
    Budget, ClauseScoreCtx, DeletionPolicy, FrequencyTable, LBool, PolicyKind, RestartScheduler,
    SolveResult, SolverConfig, SolverStats, StopCause,
};
use cnf::{Cnf, Lit, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use telemetry::Phase;

/// A clause-sharing channel between portfolio workers (see the
/// `portfolio` module).
///
/// The solver calls [`on_learn`](ClauseExchange::on_learn) for **every**
/// clause it learns — the exchange decides what to publish — and drains
/// [`import`](ClauseExchange::import) at restart boundaries, when the
/// trail is back at the root level and foreign clauses can be attached
/// safely. Implementations must be `Send`: the solver that owns the
/// exchange moves onto a worker thread.
pub trait ClauseExchange: Send {
    /// Called after each conflict with the freshly learned clause.
    fn on_learn(&mut self, lits: &[Lit], glue: u32);

    /// Yields clauses learned by other workers since the previous call.
    /// Each clause is passed to `each` together with its producer-side glue.
    fn import(&mut self, each: &mut dyn FnMut(&[Lit], u32));

    /// `(exported, imported)` clause counts seen by this exchange so far.
    fn counters(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// One entry in a literal's watch list.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Watch {
    pub(crate) cref: ClauseRef,
    /// A cached other literal of the clause; if it is already true the
    /// clause is satisfied and the watch can be skipped cheaply.
    pub(crate) blocker: Lit,
}

/// A conflict-driven clause-learning SAT solver with pluggable
/// clause-deletion policies.
///
/// The architecture follows MiniSat/Kissat: two-watched-literal propagation,
/// first-UIP conflict analysis with recursive clause minimization, EVSIDS
/// decision heap, phase saving, Luby or glue-EMA restarts, and tiered
/// clause-database reduction. The reduction scoring is delegated to a
/// [`DeletionPolicy`], which is the extension point studied by the paper.
///
/// # Examples
///
/// ```
/// use sat_solver::{Solver, SolveResult};
/// let f = cnf::parse_dimacs_str("p cnf 3 2\n1 2 0\n-2 3 0\n")?;
/// let mut solver = Solver::from_cnf(&f);
/// let result = solver.solve();
/// assert!(result.is_sat());
/// let model = result.model().expect("sat");
/// assert!(cnf::verify_model(&f, model).is_ok());
/// # Ok::<(), cnf::ParseDimacsError>(())
/// ```
pub struct Solver {
    pub(crate) num_vars: u32,
    pub(crate) db: ClauseDb,
    /// `watches.get(l)` holds clauses with `!l` among their first two
    /// literals.
    pub(crate) watches: LitMap<Vec<Watch>>,
    pub(crate) assigns: VarMap<LBool>,
    pub(crate) level: VarMap<u32>,
    pub(crate) reason: VarMap<Option<ClauseRef>>,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    pub(crate) qhead: usize,
    pub(crate) activity: VarMap<f64>,
    var_inc: f64,
    pub(crate) heap: VarHeap,
    pub(crate) saved_phase: VarMap<bool>,
    pub(crate) vmtf: VmtfQueue,
    rng_state: u64,
    pub(crate) freq: FrequencyTable,
    pub(crate) freq_total: FrequencyTable,
    policy: Box<dyn DeletionPolicy>,
    restart: RestartScheduler,
    cla_inc: f64,
    reduce_limit: usize,
    pub(crate) stats: SolverStats,
    pub(crate) config: SolverConfig,
    /// False once unsatisfiability was established at level 0.
    pub(crate) ok: bool,
    /// Assumptions for the current `solve_with_assumptions` call.
    pub(crate) assumptions: Vec<Lit>,
    /// Variables inprocessing's bounded variable elimination must never
    /// pick as pivots: assumption candidates of incremental sessions.
    /// `solve_with_assumptions` freezes its assumption set automatically;
    /// [`freeze_var`](Self::freeze_var) freezes ahead of the first use.
    pub(crate) frozen: VarMap<bool>,
    /// The failed-assumption core of the last assumption-UNSAT result.
    core: Vec<Lit>,
    // conflict-analysis scratch space
    seen: VarMap<bool>,
    analyze_toclear: Vec<Var>,
    min_stack: Vec<Lit>,
    min_visited: Vec<Var>,
    glue_levels: Vec<u32>,
    pub(crate) proof: Option<ProofLogger>,
    observer: Option<Box<dyn SearchObserver>>,
    /// Opt-in instrumentation; `None` (the default) costs one branch per
    /// hook site and nothing else.
    telemetry: Option<Box<SolverTelemetry>>,
    /// Cooperative cancellation: when set and raised, the search returns
    /// [`SolveResult::Unknown`] at the next conflict or decision boundary.
    stop: Option<Arc<AtomicBool>>,
    /// Why the most recent `solve` call returned `Unknown`, if it did.
    stop_cause: Option<StopCause>,
    /// Shared clauses dropped by `import_clause` because they mentioned
    /// variables this solver does not know (a corrupt producer).
    rejected_imports: u64,
    /// Clause-sharing channel for portfolio solving; `None` (the default)
    /// costs one branch per learned clause and per restart.
    pub(crate) exchange: Option<Box<dyn ClauseExchange>>,
    /// In-search inprocessing engine (see `inprocess.rs`); `None` unless
    /// `SolverConfig::inprocess` is set, costing one branch per restart
    /// and per learned clause.
    pub(crate) inprocess: Option<Box<crate::inprocess::InprocessEngine>>,
    /// In-search invariant auditing level (see `check.rs`); `Off` costs one
    /// branch per checkpoint. Only present with the `checks` feature.
    #[cfg(feature = "checks")]
    pub(crate) check_level: crate::check::CheckLevel,
}

impl Solver {
    /// Creates a solver for `formula` with the given configuration.
    pub fn new(formula: &Cnf, config: SolverConfig) -> Self {
        let n = formula.num_vars();
        let mut solver = Solver {
            num_vars: n,
            db: ClauseDb::new(),
            watches: LitMap::new(n, Vec::new()),
            assigns: VarMap::new(n, LBool::Undef),
            level: VarMap::new(n, 0),
            reason: VarMap::new(n, None),
            trail: Vec::with_capacity(n as usize),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: VarMap::new(n, 0.0),
            var_inc: 1.0,
            heap: VarHeap::new(n),
            saved_phase: VarMap::new(n, config.initial_phase),
            vmtf: VmtfQueue::new(n),
            rng_state: config.seed | 1,
            freq: FrequencyTable::new(n),
            freq_total: FrequencyTable::new(n),
            policy: config.policy.instantiate(),
            restart: RestartScheduler::new(config.restart),
            cla_inc: 1.0,
            reduce_limit: config.reduce_init,
            stats: SolverStats::default(),
            config,
            ok: true,
            assumptions: Vec::new(),
            frozen: VarMap::new(n, false),
            core: Vec::new(),
            seen: VarMap::new(n, false),
            analyze_toclear: Vec::new(),
            min_stack: Vec::new(),
            min_visited: Vec::new(),
            glue_levels: Vec::new(),
            proof: None,
            observer: None,
            telemetry: None,
            stop: None,
            stop_cause: None,
            rejected_imports: 0,
            exchange: None,
            inprocess: None,
            #[cfg(feature = "checks")]
            check_level: crate::check::CheckLevel::default(),
        };
        if solver.config.inprocess {
            solver.inprocess = Some(Box::new(crate::inprocess::InprocessEngine::new(n)));
        }
        for v in 0..n {
            solver.heap.insert(Var::new(v), &solver.activity);
        }
        for clause in formula.clauses() {
            solver.add_input_clause(clause.lits());
            if !solver.ok {
                break;
            }
        }
        solver
    }

    /// Creates a solver with the default configuration.
    pub fn from_cnf(formula: &Cnf) -> Self {
        Solver::new(formula, SolverConfig::default())
    }

    /// Enables DRAT proof logging. Must be called before [`solve`](Self::solve).
    pub fn enable_proof(&mut self) {
        self.proof = Some(ProofLogger::new());
    }

    /// Takes the recorded proof, if proof logging was enabled.
    pub fn take_proof(&mut self) -> Option<ProofLogger> {
        self.proof.take()
    }

    /// Installs a shared stop flag. Once another thread raises it, the
    /// search returns [`SolveResult::Unknown`] at the next conflict or
    /// decision boundary — the mechanism behind portfolio racing.
    pub fn set_stop(&mut self, stop: Arc<AtomicBool>) {
        self.stop = Some(stop);
    }

    /// Installs a clause-sharing channel (replacing any previous one).
    pub fn set_exchange(&mut self, exchange: Box<dyn ClauseExchange>) {
        self.exchange = Some(exchange);
    }

    /// Removes and returns the installed clause-sharing channel, e.g. to
    /// read its counters after a solve.
    pub fn take_exchange(&mut self) -> Option<Box<dyn ClauseExchange>> {
        self.exchange.take()
    }

    #[inline]
    fn should_stop(&self) -> bool {
        // Acquire pairs with the winner's Release store so that any state
        // published before the flag was raised is visible here.
        self.stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Acquire))
    }

    /// Full budget check, run at every conflict boundary.
    #[inline]
    fn check_budget(&self, budget: &Budget) -> Option<StopCause> {
        if self.should_stop() {
            return Some(StopCause::External);
        }
        budget.check(self.stats.conflicts, self.stats.propagations, || {
            self.approx_memory_bytes()
        })
    }

    /// Stop-flag, deadline, and memory check, run at every decision
    /// boundary. Counter limits are deliberately *not* consulted here so
    /// counter-budgeted runs stop at exactly the same conflict as they
    /// did before wall-clock budgets existed (budgeted stats stay
    /// bit-reproducible); the wall-clock and memory limits need the extra
    /// check sites to be honored within their accuracy target even on
    /// propagation-heavy stretches between conflicts.
    #[inline]
    fn check_wall_limits(&self, budget: &Budget) -> Option<StopCause> {
        if self.should_stop() {
            return Some(StopCause::External);
        }
        if budget.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(StopCause::Deadline);
        }
        if budget
            .max_memory_bytes
            .is_some_and(|m| self.approx_memory_bytes() > m)
        {
            return Some(StopCause::Memory);
        }
        None
    }

    /// Why the most recent `solve` call returned
    /// [`SolveResult::Unknown`], or `None` if it returned a verdict (or
    /// no solve has run yet).
    pub fn stop_cause(&self) -> Option<StopCause> {
        self.stop_cause
    }

    /// Shared clauses dropped because they mentioned variables this
    /// solver does not know (evidence of a corrupt producer).
    pub fn rejected_imports(&self) -> u64 {
        self.rejected_imports
    }

    /// Approximate heap footprint of the solver in bytes: the clause
    /// database plus per-variable state and watch lists. O(1), computed
    /// from maintained counters; used by [`Budget::max_memory_bytes`].
    pub fn approx_memory_bytes(&self) -> u64 {
        // Per-variable state: assigns + level + reason + activity + phase
        // + seen + heap slot + VMTF node + two frequency counters, plus
        // two watch-list headers per variable. ~128 bytes covers it.
        const PER_VAR: u64 = 128;
        // Each live clause holds two watches (cref + blocker).
        let live_clauses = (self.db.num_original() + self.db.num_learned()) as u64;
        let watches = live_clauses * 2 * std::mem::size_of::<Watch>() as u64;
        let trail = (self.trail.capacity() * std::mem::size_of::<Lit>()) as u64;
        self.db.memory_bytes() + u64::from(self.num_vars) * PER_VAR + watches + trail
    }

    /// Installs a [`SearchObserver`] that receives conflict, restart, and
    /// reduction callbacks during solving (replacing any previous one).
    pub fn set_observer(&mut self, observer: Box<dyn SearchObserver>) {
        self.observer = Some(observer);
    }

    /// Removes and returns the installed observer, if it has type `T`.
    pub fn take_observer<T: SearchObserver>(&mut self) -> Option<T> {
        let boxed = self.observer.take()?;
        let any: Box<dyn std::any::Any> = boxed;
        match any.downcast::<T>() {
            Ok(t) => Some(*t),
            Err(any) => {
                // wrong type: reinstall so the observer keeps running
                self.observer = Some(
                    any.downcast::<Box<dyn SearchObserver>>()
                        .map(|b| *b)
                        .unwrap_or(Box::new(crate::observer::NullObserver)),
                );
                None
            }
        }
    }

    /// Installs a telemetry recorder (replacing any previous one). The
    /// recorder times the solver's phases, tracks glue / clause-length /
    /// trail-depth distributions, and emits structured events around each
    /// subsequent `solve` call.
    pub fn set_telemetry(&mut self, telemetry: SolverTelemetry) {
        self.telemetry = Some(Box::new(telemetry));
    }

    /// Removes and returns the installed telemetry recorder.
    pub fn take_telemetry(&mut self) -> Option<SolverTelemetry> {
        self.telemetry.take().map(|t| *t)
    }

    /// The installed telemetry recorder, if any.
    pub fn telemetry(&self) -> Option<&SolverTelemetry> {
        self.telemetry.as_deref()
    }

    /// Solver statistics accumulated so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// The active deletion policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The per-variable propagation-frequency table used by the deletion
    /// policy: counters reflect propagations since the most recent
    /// clause-database reduction, matching Equation (2)'s definition.
    pub fn propagation_frequencies(&self) -> &FrequencyTable {
        &self.freq
    }

    /// Whole-run per-variable propagation counts (never reset) — the data
    /// behind the paper's Figure 3 histogram.
    pub fn cumulative_frequencies(&self) -> &FrequencyTable {
        &self.freq_total
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Freezes a variable: inprocessing's bounded variable elimination
    /// will never pick it as a pivot, so it stays legal in future
    /// assumptions and added clauses for the solver's whole lifetime.
    ///
    /// Incremental sessions freeze every assumption candidate up front;
    /// [`solve_with_assumptions`](Self::solve_with_assumptions) also
    /// freezes its assumption set automatically, so a variable assumed
    /// once can always be assumed again. Freezing is irreversible and
    /// only ever shrinks the elimination candidate set — verdicts are
    /// unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for this solver.
    pub fn freeze_var(&mut self, v: Var) {
        // xtask: allow(no-hard-assert) documented API contract, not search-loop code
        assert!(
            v.index() < self.num_vars,
            "frozen variable {} out of range (solver has {} variables)",
            v.index(),
            self.num_vars
        );
        self.frozen.set(v, true);
    }

    /// Freezes the variable of every literal in `lits`
    /// (see [`freeze_var`](Self::freeze_var)).
    pub fn freeze_lits(&mut self, lits: &[Lit]) {
        for &l in lits {
            self.freeze_var(l.var());
        }
    }

    /// Whether `v` is frozen (see [`freeze_var`](Self::freeze_var)).
    pub fn is_frozen(&self, v: Var) -> bool {
        v.index() < self.num_vars && self.frozen.get(v)
    }

    /// The first variable in `lits` that inprocessing eliminated, if any
    /// — the non-panicking counterpart of the eliminated-variable
    /// contract on [`add_clause`](Self::add_clause) and
    /// [`solve_with_assumptions`](Self::solve_with_assumptions). Callers
    /// that accept untrusted literal sets (e.g. a solver service) probe
    /// with this and report a typed error instead of panicking.
    pub fn find_eliminated(&self, lits: &[Lit]) -> Option<Var> {
        lits.iter()
            .map(|l| l.var())
            .find(|&v| v.index() < self.num_vars && self.var_is_eliminated(v))
    }

    /// A snapshot of the clause database's current composition.
    pub fn db_stats(&self) -> DbStats {
        let mut glue_histogram = [0usize; 8];
        let last_bucket = glue_histogram.len() - 1;
        for cref in self.db.iter_learned() {
            let g = self.db.clause(cref).glue as usize;
            if let Some(bucket) = glue_histogram.get_mut(g.min(last_bucket)) {
                *bucket += 1;
            }
        }
        DbStats {
            original_clauses: self.db.num_original(),
            learned_clauses: self.db.num_learned(),
            learned_literals: self.db.lits_in_learned(),
            live_clauses: self.db.iter_refs().count(),
            glue_histogram,
        }
    }

    /// Adds an input (original) clause. Returns `false` if the formula
    /// became unsatisfiable at the top level.
    fn add_input_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        // Normalize: drop duplicate and false-at-level-0 literals, detect
        // tautologies and satisfied clauses.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!(l.var().index() < self.num_vars);
            match self.value(l) {
                LBool::True => return true, // satisfied at level 0
                LBool::False => continue,   // falsified at level 0: drop
                LBool::Undef => {}
            }
            if c.contains(&!l) {
                return true; // tautology
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        match *c.as_slice() {
            [] => {
                self.ok = false;
                if let Some(p) = &mut self.proof {
                    p.add_empty();
                }
                false
            }
            [unit] => {
                self.assign(unit, None);
                // Root-level units forced by the input count as
                // propagations for the frequency metric, like the BCP that
                // a lazier loader would perform.
                self.stats.propagations += 1;
                self.freq.bump(unit.var());
                self.freq_total.bump(unit.var());
                // Propagate eagerly so later clauses see the implications.
                if self.propagate().is_some() {
                    self.ok = false;
                    if let Some(p) = &mut self.proof {
                        p.add_empty();
                    }
                }
                self.ok
            }
            _ => {
                let cref = self.db.add(c, false, 0);
                self.attach(cref);
                true
            }
        }
    }

    /// Drains the clause-sharing channel and integrates every foreign
    /// clause. Only called at the root level (restart boundaries).
    fn import_shared(&mut self) {
        #[cfg(feature = "trace")]
        let _import_span = telemetry::trace::span("import");
        let Some(mut exchange) = self.exchange.take() else {
            return;
        };
        // Buffer first: the callback cannot borrow `self` mutably while the
        // exchange (also owned by `self`) is being iterated.
        let mut incoming: Vec<(Vec<Lit>, u32)> = Vec::new();
        exchange.import(&mut |lits, glue| incoming.push((lits.to_vec(), glue)));
        self.exchange = Some(exchange);
        for (lits, glue) in incoming {
            if !self.ok {
                break;
            }
            self.import_clause(&lits, glue);
        }
    }

    /// Integrates one clause learned by another portfolio worker.
    ///
    /// Mirrors [`add_input_clause`](Self::add_input_clause)'s root-level
    /// normalization (drop false literals, skip satisfied clauses and
    /// tautologies, dedup) so the stored clause respects every watch
    /// invariant the auditor checks. Narrowing against level-0 assignments
    /// keeps the clause a RUP consequence of the shared proof log, because
    /// the level-0 units themselves are logged learned clauses.
    fn import_clause(&mut self, lits: &[Lit], glue: u32) {
        debug_assert_eq!(self.decision_level(), 0);
        if self.inprocess_rejects_import(lits) {
            // The clause mentions a variable this solver eliminated by
            // inprocessing; re-attaching it would resurrect the variable.
            return;
        }
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if l.var().index() >= self.num_vars {
                // A producer exported garbage (corrupt or foreign clause).
                // Soundness only depends on what we *add*, so the clause is
                // dropped and counted rather than trusted or asserted on.
                self.rejected_imports += 1;
                return;
            }
            match self.value(l) {
                LBool::True => return, // satisfied at level 0
                LBool::False => continue,
                LBool::Undef => {}
            }
            if c.contains(&!l) {
                return; // tautology
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        match *c.as_slice() {
            [] => {
                // Every literal is false at the root: the shared clause
                // refutes the formula outright.
                self.ok = false;
                if let Some(p) = &mut self.proof {
                    p.add_empty();
                }
            }
            [unit] => {
                // Asserted like a learned unit (no reason, no frequency
                // bump); the next propagation fixpoint picks it up.
                self.assign(unit, None);
            }
            _ => {
                // Clamp the producer-side glue into the auditor's valid
                // range: narrowing may have shortened the clause below it.
                let glue = glue.clamp(1, c.len() as u32);
                let cref = self.db.add_imported(c, glue);
                self.attach(cref);
            }
        }
    }

    #[inline]
    pub(crate) fn value(&self, l: Lit) -> LBool {
        self.assigns.get(l.var()).xor(l.is_negated())
    }

    #[inline]
    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Attaches watches for the first two literals of the clause.
    pub(crate) fn attach(&mut self, cref: ClauseRef) {
        let c = self.db.clause(cref);
        debug_assert!(c.len() >= 2);
        let l0 = c.lit(0);
        let l1 = c.lit(1);
        self.watches.get_mut(!l0).push(Watch { cref, blocker: l1 });
        self.watches.get_mut(!l1).push(Watch { cref, blocker: l0 });
    }

    /// Detaches both watches of the clause.
    pub(crate) fn detach(&mut self, cref: ClauseRef) {
        debug_assert!(self.db.is_live(cref), "detach of a deleted clause");
        let c = self.db.clause(cref);
        let l0 = c.lit(0);
        let l1 = c.lit(1);
        for l in [l0, l1] {
            let ws = self.watches.get_mut(!l);
            if let Some(pos) = ws.iter().position(|w| w.cref == cref) {
                ws.swap_remove(pos);
            } else {
                debug_assert!(false, "watch of {cref:?} must exist on {l}");
            }
        }
    }

    /// Assigns `l` true at the current decision level with an optional
    /// reason clause, pushing it onto the trail.
    pub(crate) fn assign(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value(l), LBool::Undef);
        let v = l.var();
        self.assigns.set(v, LBool::from(l.is_positive()));
        self.level.set(v, self.decision_level());
        self.reason.set(v, reason);
        // xtask: allow(hot-path-purity) amortized: the trail retains its capacity across backtracks
        self.trail.push(l);
        if reason.is_some() {
            // A unit propagation: this is the event counted by the paper's
            // propagation-frequency metric.
            self.stats.propagations += 1;
            self.freq.bump(v);
            self.freq_total.bump(v);
        }
    }

    /// Boolean constraint propagation. Returns the conflicting clause, if any.
    pub(crate) fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = at(&self.trail, self.qhead);
            self.qhead += 1;
            // Take `p`'s watch list out so the rest of `self` stays freely
            // borrowable; propagation never pushes onto this same list
            // (the replacement watch literal is non-false, `!p` is false).
            let mut ws = std::mem::take(self.watches.get_mut(p));
            let mut conflict = None;
            let mut i = 0;
            'watches: while i < ws.len() {
                let Watch { cref, blocker } = at(&ws, i);
                if self.value(blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let false_lit = !p;
                {
                    let c = self.db.clause_mut(cref);
                    // Ensure the false literal is at position 1.
                    if c.lit(0) == false_lit {
                        c.swap_lits(0, 1);
                    }
                    debug_assert_eq!(c.lit(1), false_lit);
                }
                let first = self.db.clause(cref).lit(0);
                if first != blocker && self.value(first) == LBool::True {
                    // Clause already satisfied; refresh blocker.
                    if let Some(w) = ws.get_mut(i) {
                        w.blocker = first;
                    }
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.db.clause(cref).len();
                for k in 2..len {
                    let lk = self.db.clause(cref).lit(k);
                    if self.value(lk) != LBool::False {
                        self.db.clause_mut(cref).swap_lits(1, k);
                        ws.swap_remove(i);
                        // xtask: allow(hot-path-purity) amortized: watch lists retain capacity; relocation is a swap between them
                        self.watches.get_mut(!lk).push(Watch {
                            cref,
                            blocker: first,
                        });
                        continue 'watches;
                    }
                }
                // No new watch: clause is unit or conflicting.
                if self.value(first) == LBool::False {
                    conflict = Some(cref); // conflict; qhead stays put
                    break;
                }
                self.assign(first, Some(cref));
                i += 1;
            }
            *self.watches.get_mut(p) = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first), the backjump level, and the clause's glue.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32, u32) {
        let analyze_timer = self.telemetry.as_ref().map(|_| Instant::now());
        #[cfg(feature = "trace")]
        let _analyze_span = telemetry::trace::span("analyze");
        // xtask: allow(hot-path-purity) per-conflict, not per-propagation: the learned clause must be materialized
        let mut learned: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for UIP
        let mut counter = 0u32; // literals of the current level not yet resolved
        let mut resolved: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = conflict;
        let current_level = self.decision_level();

        let uip = loop {
            self.bump_clause(cref);
            #[cfg(feature = "trace")]
            if self.db.clause(cref).imported {
                // First conflict-side use of a clause imported from another
                // worker; pairing it with the preceding "clause-import"
                // instant on this lane gives the import-to-use latency.
                telemetry::trace::instant_with(
                    "import-use",
                    &[("glue", u64::from(self.db.clause(cref).glue))],
                );
            }
            // Iterate the clause's literals; skip the resolved literal,
            // which sits at position 0 of its reason clause.
            let clen = self.db.clause(cref).len();
            let start = usize::from(resolved.is_some());
            for k in start..clen {
                let q = self.db.clause(cref).lit(k);
                let v = q.var();
                if !self.seen.get(v) && self.level.get(v) > 0 {
                    self.seen.set(v, true);
                    // xtask: allow(hot-path-purity) amortized: reused per-solver scratch, no steady-state allocation
                    self.analyze_toclear.push(v);
                    self.bump_var(v);
                    if self.level.get(v) >= current_level {
                        counter += 1;
                    } else {
                        // xtask: allow(hot-path-purity) per-conflict, not per-propagation: the learned clause must be materialized
                        learned.push(q);
                    }
                }
            }
            // Find the next literal of the current level on the trail.
            let q = loop {
                debug_assert!(index > 0, "trail exhausted during analysis");
                index -= 1;
                let t = at(&self.trail, index);
                if self.seen.get(t.var()) {
                    break t;
                }
            };
            counter -= 1;
            if counter == 0 {
                break q; // q is the first UIP
            }
            let Some(r) = self.reason.get(q.var()) else {
                debug_assert!(false, "non-decision literal {q} must have a reason");
                break q;
            };
            cref = r;
            // q is resolved away; its slot in `seen` stays set so the trail
            // walk above skips already-processed literals, but we must make
            // sure the reason clause iteration skips q itself: reason[q][0]
            // is q by the assertion invariant of `assign`.
            debug_assert_eq!(self.db.clause(cref).lit(0), q);
            resolved = Some(q);
        };
        if let Some(slot) = learned.first_mut() {
            *slot = !uip;
        }

        // Recursive clause minimization: drop implied literals.
        let minimize_timer = self.telemetry.as_ref().map(|_| Instant::now());
        #[cfg(feature = "trace")]
        let minimize_span = telemetry::trace::span("minimize");
        let before = learned.len();
        // In-place compaction: `learned` is a local, so `self` stays
        // freely borrowable for `lit_redundant`; no per-conflict side
        // buffer is needed.
        let mut w = 1;
        for r in 1..learned.len() {
            if !self.lit_redundant(at(&learned, r)) {
                learned.swap(w, r);
                w += 1;
            }
        }
        learned.truncate(w);
        self.stats.minimized_lits += (before - learned.len()) as u64;
        #[cfg(feature = "trace")]
        drop(minimize_span);
        let minimize_elapsed = minimize_timer.map(|start| start.elapsed());

        // Backjump level: second-highest level in the learned clause.
        let (bt_level, glue) = if learned.len() == 1 {
            (0, 1)
        } else {
            // Move the highest-level non-UIP literal to position 1 so it is
            // watched; it becomes false on backjump and wakes the clause.
            let mut max_i = 1;
            let mut max_level = self.level.get(at(&learned, 1).var());
            for (i, &l) in learned.iter().enumerate().skip(2) {
                let lvl = self.level.get(l.var());
                if lvl > max_level {
                    max_level = lvl;
                    max_i = i;
                }
            }
            learned.swap(1, max_i);
            let glue = self.compute_glue(&learned);
            (max_level, glue)
        };

        for v in self.analyze_toclear.drain(..) {
            self.seen.set(v, false);
        }
        if let (Some(start), Some(minimize), Some(t)) = (
            analyze_timer,
            minimize_elapsed,
            self.telemetry.as_deref_mut(),
        ) {
            // Keep the two phases disjoint: `analyze` excludes the
            // minimization it contains, so phase totals add up.
            t.add_phase(Phase::Analyze, start.elapsed().saturating_sub(minimize));
            t.add_phase(Phase::Minimize, minimize);
        }
        (learned, bt_level, glue)
    }

    /// Glue (LBD): number of distinct decision levels among the literals.
    fn compute_glue(&mut self, lits: &[Lit]) -> u32 {
        let mut levels = std::mem::take(&mut self.glue_levels);
        levels.clear();
        // xtask: allow(hot-path-purity) amortized: reused per-solver scratch, no steady-state allocation
        levels.extend(lits.iter().map(|l| self.level.get(l.var())));
        levels.sort_unstable();
        levels.dedup();
        let glue = levels.len() as u32;
        self.glue_levels = levels;
        glue
    }

    /// Whether `l` is redundant in the learned clause: its reason-side
    /// ancestry stays within already-seen literals (recursive minimization,
    /// iterative formulation).
    fn lit_redundant(&mut self, l: Lit) -> bool {
        if self.reason.get(l.var()).is_none() {
            return false; // decisions are never redundant
        }
        self.min_stack.clear();
        // xtask: allow(hot-path-purity) amortized: reused per-solver scratch, no steady-state allocation
        self.min_stack.push(l);
        let mut visited = std::mem::take(&mut self.min_visited);
        visited.clear();
        let mut redundant = true;
        while let Some(q) = self.min_stack.pop() {
            let Some(r) = self.reason.get(q.var()) else {
                redundant = false;
                break;
            };
            let rlen = self.db.clause(r).len();
            for k in 1..rlen {
                let a = self.db.clause(r).lit(k);
                let v = a.var();
                if self.seen.get(v) || self.level.get(v) == 0 {
                    continue;
                }
                if self.reason.get(v).is_none() {
                    redundant = false;
                    break;
                }
                // Tentatively mark and descend.
                self.seen.set(v, true);
                // xtask: allow(hot-path-purity) amortized: reused per-solver scratch, no steady-state allocation
                visited.push(v);
                // xtask: allow(hot-path-purity) amortized: reused per-solver scratch, no steady-state allocation
                self.min_stack.push(a);
            }
            if !redundant {
                break;
            }
        }
        if redundant {
            // Keep marks: they are genuinely implied by seen literals and
            // can shortcut later redundancy checks.
            // xtask: allow(hot-path-purity) amortized: reused per-solver scratch, no steady-state allocation
            self.analyze_toclear.append(&mut visited);
        } else {
            for v in visited.drain(..) {
                self.seen.set(v, false);
            }
        }
        self.min_visited = visited;
        redundant
    }

    fn bump_var(&mut self, v: Var) {
        if self.config.branching == Branching::Vmtf {
            self.vmtf.bump(v);
        }
        let a = self.activity.get_mut(v);
        *a += self.var_inc;
        if *a > 1e100 {
            for act in self.activity.iter_mut() {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = self.db.clause_mut(cref);
        if !c.learned {
            return;
        }
        c.activity += self.cla_inc;
        c.protected = true;
        if c.activity > 1e20 {
            self.db.rescale_activity(1e-20);
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.clause_decay;
    }

    /// Undoes all assignments above `target_level`.
    pub(crate) fn backtrack(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let target_len = at(&self.trail_lim, target_level as usize);
        for idx in target_len..self.trail.len() {
            let l = at(&self.trail, idx);
            let v = l.var();
            self.saved_phase.set(v, l.is_positive());
            self.assigns.set(v, LBool::Undef);
            self.reason.set(v, None);
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(target_len);
        self.trail_lim.truncate(target_level as usize);
        self.qhead = target_len;
        self.vmtf.rewind();
    }

    /// Picks the next decision literal, or `None` when fully assigned.
    fn decide(&mut self) -> Option<Lit> {
        let v = match self.config.branching {
            Branching::Evsids => {
                let mut picked = None;
                while let Some(v) = self.heap.pop(&self.activity) {
                    if !self.assigns.get(v).is_assigned() && !self.var_is_eliminated(v) {
                        picked = Some(v);
                        break;
                    }
                }
                picked
            }
            Branching::Vmtf => {
                let assigns = &self.assigns;
                let inprocess = self.inprocess.as_deref();
                self.vmtf.next_unassigned(|v| {
                    !assigns.get(v).is_assigned() && !inprocess.is_some_and(|e| e.is_eliminated(v))
                })
            }
            Branching::Random => self.pick_random_unassigned(),
        }?;
        let phase = self.saved_phase.get(v);
        Some(v.lit(!phase))
    }

    /// A uniformly random unassigned variable via an xorshift generator,
    /// falling back to a linear scan when the rejection loop runs long.
    fn pick_random_unassigned(&mut self) -> Option<Var> {
        if self.num_vars == 0 {
            return None;
        }
        for _ in 0..32 {
            // xorshift64*
            self.rng_state ^= self.rng_state >> 12;
            self.rng_state ^= self.rng_state << 25;
            self.rng_state ^= self.rng_state >> 27;
            let r = (self.rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as u32;
            let v = Var::new(r % self.num_vars);
            if !self.assigns.get(v).is_assigned() && !self.var_is_eliminated(v) {
                return Some(v);
            }
        }
        (0..self.num_vars)
            .map(Var::new)
            .find(|&v| !self.assigns.get(v).is_assigned() && !self.var_is_eliminated(v))
    }

    /// Deletes low-scoring reducible learned clauses (the REDUCE step whose
    /// scoring the paper varies) and resets the frequency counters.
    fn reduce_db(&mut self) {
        let reduce_timer = self.telemetry.as_ref().map(|_| Instant::now());
        #[cfg(feature = "trace")]
        let _reduce_span = telemetry::trace::span("reduce");
        self.stats.reductions += 1;
        #[cfg(feature = "trace")]
        let score_span = telemetry::trace::span("reduce-score");
        let mut candidates: Vec<(u64, ClauseRef)> = Vec::new();
        for cref in self.db.iter_learned().collect::<Vec<_>>() {
            let c = self.db.clause(cref);
            if c.glue <= self.config.tier1_glue || c.protected || self.is_reason(cref) {
                continue;
            }
            let score = self.policy.score(&ClauseScoreCtx {
                lits: c.lits(),
                glue: c.glue,
                activity: c.activity,
                freq: &self.freq,
            });
            candidates.push((score, cref));
        }
        // Lowest scores first; ties broken by clause slot for determinism.
        candidates.sort_unstable();
        #[cfg(feature = "trace")]
        drop(score_span);
        let delete_count = (candidates.len() as f64 * self.config.reduce_fraction).floor() as usize;
        for &(_, cref) in candidates.iter().take(delete_count) {
            if let Some(p) = &mut self.proof {
                p.delete(self.db.clause(cref).lits());
            }
            self.detach(cref);
            self.db.remove(cref);
            self.stats.deleted_clauses += 1;
        }
        // Unprotect survivors so protection reflects recent use only.
        for cref in self.db.iter_learned().collect::<Vec<_>>() {
            self.db.clause_mut(cref).protected = false;
        }
        if let Some(obs) = &mut self.observer {
            obs.on_reduction(self.stats.reductions, delete_count, candidates.len());
        }
        if let Some(start) = reduce_timer {
            let reductions = self.stats.reductions;
            let conflicts = self.stats.conflicts;
            let learned_after = self.db.num_learned();
            if let Some(t) = &mut self.telemetry {
                t.add_phase(Phase::Reduce, start.elapsed());
                t.on_reduction(
                    reductions,
                    candidates.len(),
                    delete_count,
                    learned_after,
                    conflicts,
                );
            }
        }
        self.freq.reset();
        self.reduce_limit += self.config.reduce_inc;
        self.checkpoint(Checkpoint::PostReduce);
    }

    /// Whether the clause is the reason of some current assignment.
    fn is_reason(&self, cref: ClauseRef) -> bool {
        let first = self.db.clause(cref).lit(0);
        self.value(first) == LBool::True && self.reason.get(first.var()) == Some(cref)
    }

    /// Runs the in-search invariant auditor at `checkpoint` when the
    /// `checks` feature is enabled and a level was selected; a no-op (one
    /// dead branch) otherwise. Panics on the first violated invariant.
    #[inline]
    pub(crate) fn checkpoint(&self, checkpoint: Checkpoint) {
        #[cfg(feature = "checks")]
        crate::check::run_checkpoint(self, checkpoint);
        #[cfg(not(feature = "checks"))]
        let _ = checkpoint;
    }

    /// Solves with an unlimited budget.
    ///
    /// Returns [`SolveResult::Sat`] with a total model, or
    /// [`SolveResult::Unsat`]; never [`SolveResult::Unknown`].
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_budget(Budget::unlimited())
    }

    /// Solves until a verdict or budget exhaustion.
    ///
    /// Calling `solve_with_budget` again after an [`SolveResult::Unknown`]
    /// resumes the search with all learned clauses and heuristic state
    /// intact (budgets compare against *total* accumulated counters).
    pub fn solve_with_budget(&mut self, budget: Budget) -> SolveResult {
        self.assumptions.clear();
        self.search(budget)
    }

    /// Solves under the given assumptions: literals forced true for this
    /// call only. On [`SolveResult::Unsat`] caused by the assumptions,
    /// [`unsat_core`](Self::unsat_core) holds an inconsistent subset of
    /// them; learned clauses are kept, so subsequent calls with different
    /// assumptions reuse all derived knowledge (incremental solving).
    ///
    /// # Panics
    ///
    /// Panics if an assumption mentions a variable the solver does not know.
    ///
    /// # Examples
    ///
    /// ```
    /// use sat_solver::{Budget, Solver};
    /// use cnf::Lit;
    /// // x1 → x2, assumption x1 ∧ ¬x2 is inconsistent
    /// let f = cnf::parse_dimacs_str("p cnf 2 1\n-1 2 0\n")?;
    /// let mut s = Solver::from_cnf(&f);
    /// let a = [Lit::from_dimacs(1), Lit::from_dimacs(-2)];
    /// assert!(s.solve_with_assumptions(&a, Budget::unlimited()).is_unsat());
    /// assert!(!s.unsat_core().is_empty());
    /// // the solver itself is still satisfiable
    /// assert!(s.solve().is_sat());
    /// # Ok::<(), cnf::ParseDimacsError>(())
    /// ```
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit], budget: Budget) -> SolveResult {
        for a in assumptions {
            // xtask: allow(no-hard-assert) documented API contract, not search-loop code
            assert!(
                a.var().index() < self.num_vars,
                "assumption on unknown variable {a}"
            );
        }
        self.assert_not_eliminated(assumptions, "assumption set");
        // Assumption variables are candidates for future calls too:
        // freeze them so inprocessing between calls cannot eliminate a
        // variable the caller will assume again.
        for a in assumptions {
            self.frozen.set(a.var(), true);
        }
        self.assumptions = assumptions.to_vec();
        let result = self.search(budget);
        self.assumptions.clear();
        result
    }

    /// The inconsistent subset of assumptions from the most recent
    /// [`solve_with_assumptions`](Self::solve_with_assumptions) call that
    /// returned [`SolveResult::Unsat`] *because of the assumptions*.
    /// Empty when the formula itself is unsatisfiable.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.core
    }

    /// Runs the CDCL loop, bracketing it with telemetry solve start/end
    /// events when a recorder is installed. The recorder only reads state
    /// the solver maintains anyway, so installing one never changes the
    /// search (see the invariance test in `tests/telemetry.rs`).
    fn search(&mut self, budget: Budget) -> SolveResult {
        self.stop_cause = None;
        if self.telemetry.is_some() {
            let policy = self.policy.name();
            let num_vars = u64::from(self.num_vars);
            let num_clauses = self.db.num_original() as u64;
            if let Some(t) = &mut self.telemetry {
                t.on_solve_start(policy, num_vars, num_clauses);
            }
        }
        let result = self.search_loop(budget);
        if self.telemetry.is_some() {
            let verdict = match &result {
                SolveResult::Sat(_) => "SAT",
                SolveResult::Unsat => "UNSAT",
                SolveResult::Unknown => "UNKNOWN",
            };
            let policy = self.policy.name();
            let stats = self.stats;
            let db = self.db_stats();
            if let Some(t) = &mut self.telemetry {
                t.on_solve_end(verdict, policy, &stats, &db);
            }
        }
        result
    }

    fn search_loop(&mut self, budget: Budget) -> SolveResult {
        if !self.ok {
            // The contradiction was found while loading input clauses,
            // possibly before proof logging was enabled; the empty clause is
            // a RUP consequence of the input, so log it now if absent.
            if let Some(p) = &mut self.proof {
                if !p.claims_unsat() {
                    p.add_empty();
                }
            }
            return SolveResult::Unsat;
        }
        loop {
            let bcp_timer = self.telemetry.as_ref().map(|_| Instant::now());
            #[cfg(feature = "trace")]
            let bcp_span = telemetry::trace::span("propagate");
            #[cfg(feature = "metrics")]
            let metrics_props_before = self.stats.propagations;
            #[cfg(feature = "metrics")]
            let metrics_bcp_timer = telemetry::metrics::phase_timer();
            let conflict = self.propagate();
            #[cfg(feature = "metrics")]
            {
                telemetry::metrics::phase_done(
                    metrics_bcp_timer,
                    telemetry::metrics::Counter::PropagateNanos,
                    telemetry::metrics::Counter::PropagateCalls,
                );
                telemetry::metrics::add(
                    telemetry::metrics::Counter::Propagations,
                    self.stats.propagations.saturating_sub(metrics_props_before),
                );
            }
            #[cfg(feature = "trace")]
            drop(bcp_span);
            if let (Some(start), Some(t)) = (bcp_timer, self.telemetry.as_deref_mut()) {
                t.add_phase(Phase::Propagate, start.elapsed());
            }
            if let Some(conflict) = conflict {
                self.stats.conflicts += 1;
                #[cfg(feature = "metrics")]
                telemetry::metrics::inc(telemetry::metrics::Counter::Conflicts);
                if self.decision_level() == 0 {
                    self.ok = false;
                    if let Some(p) = &mut self.proof {
                        p.add_empty();
                    }
                    return SolveResult::Unsat;
                }
                let trail_depth = self.trail.len();
                #[cfg(feature = "metrics")]
                let metrics_analyze_timer = telemetry::metrics::phase_timer();
                let (learned, bt_level, glue) = self.analyze(conflict);
                #[cfg(feature = "metrics")]
                {
                    telemetry::metrics::phase_done(
                        metrics_analyze_timer,
                        telemetry::metrics::Counter::AnalyzeNanos,
                        telemetry::metrics::Counter::AnalyzeCalls,
                    );
                    telemetry::metrics::inc(telemetry::metrics::Counter::LearnedClauses);
                }
                self.stats.learned_clauses += 1;
                self.stats.glue_sum += glue as u64;
                if let Some(obs) = &mut self.observer {
                    obs.on_conflict(self.stats.conflicts, glue, learned.len());
                }
                if let Some(p) = &mut self.proof {
                    p.add(&learned);
                }
                if let Some(x) = &mut self.exchange {
                    x.on_learn(&learned, glue);
                }
                if let Some(eng) = &mut self.inprocess {
                    eng.touch_lits(&learned);
                }
                self.backtrack(bt_level);
                match *learned.as_slice() {
                    [] => debug_assert!(false, "learned clause cannot be empty"),
                    [unit] => {
                        self.assign(unit, None);
                        // Level-0 unit: re-propagation happens at loop top.
                    }
                    [first, ..] => {
                        let cref = self.db.add(learned.clone(), true, glue);
                        self.attach(cref);
                        self.bump_clause(cref);
                        self.assign(first, Some(cref));
                    }
                }
                self.checkpoint(Checkpoint::PostLearn);
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.on_conflict(glue, learned.len(), trail_depth, self.db.num_learned());
                    t.maybe_progress(&self.stats, self.db.num_learned());
                }
                self.decay_activities();
                if self.restart.on_conflict(glue) {
                    let restart_timer = self.telemetry.as_ref().map(|_| Instant::now());
                    #[cfg(feature = "trace")]
                    let _restart_span = telemetry::trace::span("restart");
                    self.restart.on_restart();
                    self.stats.restarts += 1;
                    // Restart boundaries double as the gauge refresh points:
                    // cheap, frequent enough for live monitoring, and off
                    // the per-propagation fast path.
                    #[cfg(feature = "metrics")]
                    if telemetry::metrics::armed() {
                        telemetry::metrics::inc(telemetry::metrics::Counter::Restarts);
                        telemetry::metrics::set_gauge(
                            telemetry::metrics::Gauge::MemoryBytes,
                            self.approx_memory_bytes() as f64,
                        );
                        telemetry::metrics::set_gauge(
                            telemetry::metrics::Gauge::LiveLearned,
                            self.db.num_learned() as f64,
                        );
                    }
                    if let Some(obs) = &mut self.observer {
                        obs.on_restart(self.stats.restarts);
                    }
                    self.backtrack(0);
                    // Restart boundaries are the import points: the trail is
                    // at the root level, so foreign clauses can be attached,
                    // narrowed, or asserted without interacting with any
                    // in-flight decision.
                    if self.exchange.is_some() {
                        self.import_shared();
                        if !self.ok {
                            return SolveResult::Unsat;
                        }
                    }
                    // Inprocessing shares the restart boundary: the trail
                    // is at the root, so clauses can be strengthened,
                    // deleted, or replaced without touching live decisions.
                    if self.inprocess_due() {
                        let inprocess_timer = self.telemetry.as_ref().map(|_| Instant::now());
                        #[cfg(feature = "trace")]
                        let inprocess_span = telemetry::trace::span("inprocess");
                        #[cfg(feature = "metrics")]
                        let metrics_inprocess_timer = telemetry::metrics::phase_timer();
                        #[cfg(feature = "metrics")]
                        let inprocess_before = self.inprocess_stats().unwrap_or_default();
                        let still_sat = self.inprocess_round();
                        #[cfg(feature = "metrics")]
                        {
                            telemetry::metrics::phase_done(
                                metrics_inprocess_timer,
                                telemetry::metrics::Counter::InprocessNanos,
                                telemetry::metrics::Counter::InprocessCalls,
                            );
                            if telemetry::metrics::armed() {
                                let after = self.inprocess_stats().unwrap_or_default();
                                telemetry::metrics::add(
                                    telemetry::metrics::Counter::InprocessSubsumed,
                                    after.subsumed.saturating_sub(inprocess_before.subsumed),
                                );
                                telemetry::metrics::add(
                                    telemetry::metrics::Counter::InprocessStrengthened,
                                    after
                                        .strengthened
                                        .saturating_sub(inprocess_before.strengthened),
                                );
                                telemetry::metrics::add(
                                    telemetry::metrics::Counter::InprocessEliminated,
                                    after
                                        .eliminated_vars
                                        .saturating_sub(inprocess_before.eliminated_vars),
                                );
                            }
                        }
                        #[cfg(feature = "trace")]
                        drop(inprocess_span);
                        if let (Some(start), Some(t)) =
                            (inprocess_timer, self.telemetry.as_deref_mut())
                        {
                            t.add_phase(Phase::Inprocess, start.elapsed());
                        }
                        if !still_sat {
                            return SolveResult::Unsat;
                        }
                    }
                    self.checkpoint(Checkpoint::PostBackjump);
                    if let (Some(start), Some(t)) = (restart_timer, self.telemetry.as_deref_mut()) {
                        t.add_phase(Phase::Restart, start.elapsed());
                    }
                }
                if let Some(cause) = self.check_budget(&budget) {
                    self.stop_cause = Some(cause);
                    return SolveResult::Unknown;
                }
            } else {
                self.checkpoint(Checkpoint::PostPropagate);
                // No conflict: establish assumptions, maybe reduce, decide.
                match self.establish_assumptions() {
                    AssumptionStep::Assigned => continue, // propagate it
                    AssumptionStep::Failed => {
                        self.backtrack(0);
                        return SolveResult::Unsat;
                    }
                    AssumptionStep::Done => {}
                }
                if let Some(cause) = self.check_wall_limits(&budget) {
                    self.stop_cause = Some(cause);
                    return SolveResult::Unknown;
                }
                let reducible = self
                    .db
                    .num_learned()
                    .saturating_sub(self.num_assigned_reasons());
                if reducible >= self.reduce_limit {
                    #[cfg(feature = "metrics")]
                    let metrics_reduce_timer = telemetry::metrics::phase_timer();
                    #[cfg(feature = "metrics")]
                    let metrics_deleted_before = self.stats.deleted_clauses;
                    self.reduce_db();
                    #[cfg(feature = "metrics")]
                    if telemetry::metrics::armed() {
                        telemetry::metrics::phase_done(
                            metrics_reduce_timer,
                            telemetry::metrics::Counter::ReduceNanos,
                            telemetry::metrics::Counter::ReduceCalls,
                        );
                        telemetry::metrics::inc(telemetry::metrics::Counter::Reductions);
                        telemetry::metrics::add(
                            telemetry::metrics::Counter::DeletedClauses,
                            self.stats
                                .deleted_clauses
                                .saturating_sub(metrics_deleted_before),
                        );
                        telemetry::metrics::set_gauge(
                            telemetry::metrics::Gauge::MemoryBytes,
                            self.approx_memory_bytes() as f64,
                        );
                        telemetry::metrics::set_gauge(
                            telemetry::metrics::Gauge::LiveLearned,
                            self.db.num_learned() as f64,
                        );
                    }
                }
                match self.decide() {
                    Some(l) => {
                        self.stats.decisions += 1;
                        #[cfg(feature = "metrics")]
                        telemetry::metrics::inc(telemetry::metrics::Counter::Decisions);
                        self.trail_lim.push(self.trail.len());
                        self.assign(l, None);
                    }
                    None => {
                        let model = self.extract_model();
                        self.backtrack(0);
                        return SolveResult::Sat(model);
                    }
                }
            }
        }
    }

    /// Ensures one assumption is established per decision level. Called
    /// only when propagation is at fixpoint.
    fn establish_assumptions(&mut self) -> AssumptionStep {
        while (self.decision_level() as usize) < self.assumptions.len() {
            let a = at(&self.assumptions, self.decision_level() as usize);
            match self.value(a) {
                LBool::True => {
                    // Already implied: open an empty decision level so the
                    // remaining assumptions keep their positions.
                    self.trail_lim.push(self.trail.len());
                }
                LBool::False => {
                    self.core = self.analyze_final(a);
                    return AssumptionStep::Failed;
                }
                LBool::Undef => {
                    self.stats.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    self.assign(a, None);
                    return AssumptionStep::Assigned;
                }
            }
        }
        AssumptionStep::Done
    }

    /// Computes an inconsistent subset of the assumptions, given the failed
    /// assumption `a` (whose negation is currently implied). Walks the
    /// implication graph from `¬a` down to assumption decisions.
    fn analyze_final(&mut self, a: Lit) -> Vec<Lit> {
        let mut core = vec![a];
        if self.decision_level() == 0 {
            return core;
        }
        self.seen.set(a.var(), true);
        let start = at(&self.trail_lim, 0);
        for i in (start..self.trail.len()).rev() {
            let q = at(&self.trail, i);
            let qv = q.var();
            if !self.seen.get(qv) {
                continue;
            }
            match self.reason.get(qv) {
                // A decision inside the assumption prefix is an assumption.
                None => {
                    if qv != a.var() {
                        core.push(q);
                    }
                }
                Some(r) => {
                    let len = self.db.clause(r).len();
                    for k in 1..len {
                        let l = self.db.clause(r).lit(k);
                        if self.level.get(l.var()) > 0 {
                            self.seen.set(l.var(), true);
                        }
                    }
                }
            }
            self.seen.set(qv, false);
        }
        self.seen.set(a.var(), false);
        core
    }

    /// Adds a clause after construction (incremental interface). The solver
    /// backtracks to the root level first. Returns `false` if the formula
    /// became unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if the clause mentions a variable the solver does not know;
    /// allocate variables up front via the input formula's variable count.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.assert_not_eliminated(lits, "added clause");
        self.backtrack(0);
        self.qhead = self.qhead.min(self.trail.len());
        self.add_input_clause(lits)
    }

    fn num_assigned_reasons(&self) -> usize {
        // Cheap overapproximation: number of propagated literals on the trail.
        self.trail
            .iter()
            .filter(|l| self.reason.get(l.var()).is_some())
            .count()
    }

    fn extract_model(&self) -> Vec<bool> {
        let mut model: Vec<bool> = (0..self.num_vars)
            .map(Var::new)
            .map(|v| {
                self.assigns
                    .get(v)
                    .to_bool()
                    // Unconstrained variables default to the saved phase.
                    .unwrap_or(self.saved_phase.get(v))
            })
            .collect();
        if let Some(eng) = &self.inprocess {
            // Replay BVE's reconstruction stack so eliminated variables
            // take values satisfying the clauses removed with them.
            eng.extend_model(&mut model);
        }
        model
    }
}

impl std::fmt::Debug for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("num_vars", &self.num_vars)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .field("ok", &self.ok)
            .finish()
    }
}

/// Decision-variable selection heuristic.
///
/// Kissat alternates between activity-based ("stable") and
/// move-to-front ("focused") modes; both are offered here, plus a seeded
/// random baseline for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Branching {
    /// Exponential VSIDS: pick the unassigned variable with the highest
    /// decayed activity (the default).
    #[default]
    Evsids,
    /// Variable move-to-front: pick the most recently bumped unassigned
    /// variable.
    Vmtf,
    /// Uniformly random unassigned variable (seeded by
    /// [`SolverConfig::seed`]) — an ablation baseline.
    Random,
}

/// A position in the CDCL loop where the invariant auditor may run
/// (see the `checks` cargo feature and `rsat --check`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Checkpoint {
    /// Propagation reached a fixpoint without conflict.
    PostPropagate,
    /// A learned clause (or learned unit) was just attached and asserted.
    PostLearn,
    /// A clause-database reduction just completed.
    PostReduce,
    /// A restart just backtracked to the root level.
    PostBackjump,
    /// An inprocessing round (complete or budget-aborted) just finished.
    PostInprocess,
}

/// Outcome of one assumption-establishment step.
enum AssumptionStep {
    /// All assumptions are established; proceed to normal decisions.
    Done,
    /// An assumption was just assigned; propagate before continuing.
    Assigned,
    /// An assumption is falsified; the core was recorded.
    Failed,
}

/// A snapshot of the clause database's composition
/// (see [`Solver::db_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbStats {
    /// Live original (input) clauses.
    pub original_clauses: usize,
    /// Live learned clauses.
    pub learned_clauses: usize,
    /// Total literal occurrences in live learned clauses.
    pub learned_literals: usize,
    /// Total live clauses (original + learned).
    pub live_clauses: usize,
    /// Learned-clause counts by glue value (last bucket is `≥ 7`).
    pub glue_histogram: [usize; 8],
}

/// Convenience: solve a formula with a given policy and budget, returning
/// the result and final statistics.
///
/// # Examples
///
/// ```
/// use sat_solver::{solve_with_policy, Budget, PolicyKind};
/// let f = cnf::parse_dimacs_str("p cnf 2 2\n1 0\n-1 2 0\n")?;
/// let (result, stats) = solve_with_policy(&f, PolicyKind::PropFreq, Budget::unlimited());
/// assert!(result.is_sat());
/// assert!(stats.propagations >= 1);
/// # Ok::<(), cnf::ParseDimacsError>(())
/// ```
pub fn solve_with_policy(
    formula: &Cnf,
    policy: PolicyKind,
    budget: Budget,
) -> (SolveResult, SolverStats) {
    let mut solver = Solver::new(formula, SolverConfig::with_policy(policy));
    let result = solver.solve_with_budget(budget);
    (result, *solver.stats())
}

/// Like [`solve_with_policy`], but with a telemetry recorder installed:
/// also returns the per-instance [`telemetry::RunRecord`] (phase timings,
/// distributions, peak clause-DB size). Events along the way go to `sink`
/// when one is given; pass `None` for measurement without event output.
pub fn solve_with_policy_recorded(
    formula: &Cnf,
    policy: PolicyKind,
    budget: Budget,
    instance_id: &str,
    sink: Option<Box<dyn telemetry::Sink>>,
) -> (SolveResult, SolverStats, telemetry::RunRecord) {
    let mut solver = Solver::new(formula, SolverConfig::with_policy(policy));
    let mut recorder = SolverTelemetry::new(instance_id);
    if let Some(sink) = sink {
        recorder = recorder.with_sink(sink);
    }
    solver.set_telemetry(recorder);
    let result = solver.solve_with_budget(budget);
    let stats = *solver.stats();
    let record = solver
        .take_telemetry()
        .and_then(SolverTelemetry::into_record)
        // Unreachable: the recorder was installed above and survives the
        // solve; fall back to an empty record rather than panicking.
        .unwrap_or_else(|| telemetry::RunRecord::new(instance_id, ""));
    (result, stats, record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::verify_model;

    fn cnf_of(clauses: &[&[i32]]) -> Cnf {
        let mut f = Cnf::new(0);
        for c in clauses {
            f.add_dimacs(c);
        }
        f
    }

    #[test]
    fn trivial_sat() {
        let f = cnf_of(&[&[1]]);
        let mut s = Solver::from_cnf(&f);
        let r = s.solve();
        assert_eq!(r, SolveResult::Sat(vec![true]));
    }

    #[test]
    fn trivial_unsat() {
        let f = cnf_of(&[&[1], &[-1]]);
        assert!(Solver::from_cnf(&f).solve().is_unsat());
    }

    #[test]
    fn empty_clause_unsat() {
        let mut f = Cnf::new(1);
        f.add_clause(cnf::Clause::new());
        assert!(Solver::from_cnf(&f).solve().is_unsat());
    }

    #[test]
    fn empty_formula_sat() {
        let f = Cnf::new(3);
        let r = Solver::from_cnf(&f).solve();
        assert!(r.is_sat());
        assert_eq!(r.model().unwrap().len(), 3);
    }

    #[test]
    fn paper_example_sat() {
        let f = cnf_of(&[&[1, 2], &[-2, 3]]);
        let mut s = Solver::from_cnf(&f);
        let r = s.solve();
        assert!(verify_model(&f, r.model().unwrap()).is_ok());
    }

    #[test]
    fn chain_propagation() {
        // x1 ∧ (¬x1∨x2) ∧ (¬x2∨x3) ∧ ... forces all true
        let mut clauses: Vec<Vec<i32>> = vec![vec![1]];
        for i in 1..50 {
            clauses.push(vec![-i, i + 1]);
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let f = cnf_of(&refs);
        let mut s = Solver::from_cnf(&f);
        let r = s.solve();
        assert_eq!(r.model().unwrap(), &vec![true; 50][..]);
        assert!(s.stats().propagations >= 49);
    }

    #[test]
    fn unsat_needs_conflict_analysis() {
        // (x1∨x2) ∧ (x1∨¬x2) ∧ (¬x1∨x3) ∧ (¬x1∨¬x3) is UNSAT
        let f = cnf_of(&[&[1, 2], &[1, -2], &[-1, 3], &[-1, -3]]);
        assert!(Solver::from_cnf(&f).solve().is_unsat());
    }

    #[test]
    fn xor_chain_unsat() {
        // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is UNSAT (odd cycle)
        let f = cnf_of(&[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3], &[1, 3], &[-1, -3]]);
        assert!(Solver::from_cnf(&f).solve().is_unsat());
    }

    #[test]
    fn budget_returns_unknown_and_resumes() {
        // A pigeonhole-ish hard instance would be ideal; use a small
        // unsat formula with an absurdly small budget instead.
        let f = cnf_of(&[
            &[1, 2, 3],
            &[1, 2, -3],
            &[1, -2, 3],
            &[1, -2, -3],
            &[-1, 2, 3],
            &[-1, 2, -3],
            &[-1, -2, 3],
            &[-1, -2, -3],
        ]);
        let mut s = Solver::from_cnf(&f);
        let r = s.solve_with_budget(Budget::conflicts(1));
        // Either it finishes instantly or reports Unknown; resuming must
        // then produce Unsat.
        if r.is_unknown() {
            assert!(s.solve().is_unsat());
        } else {
            assert!(r.is_unsat());
        }
    }

    #[test]
    fn duplicate_and_tautological_input() {
        let f = cnf_of(&[&[1, 1, 2], &[1, -1], &[2, 2]]);
        let mut s = Solver::from_cnf(&f);
        let r = s.solve();
        let m = r.model().unwrap();
        assert!(m[1], "x2 must be true");
    }

    #[test]
    fn stats_track_decisions_and_conflicts() {
        let f = cnf_of(&[&[1, 2], &[-1, 2], &[1, -2]]);
        let mut s = Solver::from_cnf(&f);
        let r = s.solve();
        assert!(r.is_sat());
        let st = *s.stats();
        assert!(st.decisions + st.propagations > 0);
    }

    #[test]
    fn solve_with_policy_both_agree() {
        let f = cnf_of(&[&[1, 2], &[-2, 3], &[-3, -1], &[2, 3]]);
        let (r1, _) = solve_with_policy(&f, PolicyKind::Default, Budget::unlimited());
        let (r2, _) = solve_with_policy(&f, PolicyKind::PropFreq, Budget::unlimited());
        assert_eq!(r1.is_sat(), r2.is_sat());
    }
}
