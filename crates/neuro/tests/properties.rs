//! Property tests for the autodiff engine and the paper's layers.

use neuro::{init_rng, LinearAttention, Matrix, ParamStore, Session, Tape};
use proptest::prelude::*;
use rand::Rng;

fn arb_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f32..2.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// d(sum(a ⊙ b))/da == b for arbitrary shapes.
    #[test]
    fn mul_gradient_is_other_operand(a in arb_matrix(5, 5)) {
        let (r, c) = a.shape();
        let b = a.map(|x| x * 0.5 + 1.0);
        let mut t = Tape::new();
        let na = t.leaf(a);
        let nb = t.leaf(b.clone());
        let prod = t.mul(na, nb);
        let loss = t.sum_all(prod);
        let g = t.backward(loss);
        prop_assert_eq!(g.get(na, &t), b);
        let _ = (r, c);
    }

    /// matmul gradients have the right shapes and satisfy the chain rule
    /// against a finite-difference probe of one random element.
    #[test]
    fn matmul_gradient_finite_difference(
        a in arb_matrix(4, 3),
        seed in 0u64..100,
    ) {
        let mut rng = init_rng(seed);
        let b = Matrix::from_vec(
            a.cols(), 2,
            (0..a.cols() * 2).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let loss_of = |a: &Matrix, b: &Matrix| -> f32 {
            let mut t = Tape::new();
            let na = t.leaf(a.clone());
            let nb = t.leaf(b.clone());
            let y = t.matmul(na, nb);
            let sq = t.mul(y, y);
            let l = t.sum_all(sq);
            t.value(l).get(0, 0)
        };
        let mut t = Tape::new();
        let na = t.leaf(a.clone());
        let nb = t.leaf(b.clone());
        let y = t.matmul(na, nb);
        let sq = t.mul(y, y);
        let l = t.sum_all(sq);
        let g = t.backward(l);
        // probe one element of a
        let idx = (seed as usize) % a.as_slice().len();
        let eps = 1e-2f32;
        let mut ap = a.clone();
        ap.as_mut_slice()[idx] += eps;
        let mut am = a.clone();
        am.as_mut_slice()[idx] -= eps;
        let numeric = (loss_of(&ap, &b) - loss_of(&am, &b)) / (2.0 * eps);
        let analytic = g.get(na, &t).as_slice()[idx];
        prop_assert!(
            (numeric - analytic).abs() <= 0.05 * (1.0 + numeric.abs()),
            "numeric {numeric} analytic {analytic}"
        );
    }

    /// Linear attention and the quadratic reference agree on arbitrary
    /// feature matrices (the core algebraic identity of Equation 9).
    #[test]
    fn attention_linear_equals_quadratic(z in arb_matrix(12, 6), seed in 0u64..20) {
        let d = z.cols();
        let mut store = ParamStore::new();
        let mut rng = init_rng(seed);
        let attn = LinearAttention::new(&mut store, d, &mut rng);
        let mut t = Tape::new();
        let mut sess = Session::new(&store);
        let nz = t.leaf(z);
        let fast = attn.forward(&mut t, &mut sess, &store, nz);
        let slow = attn.forward_quadratic(&mut t, &mut sess, &store, nz);
        for (a, b) in t.value(fast).as_slice().iter().zip(t.value(slow).as_slice()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// Softmax-free attention is permutation-equivariant: permuting input
    /// rows permutes output rows identically.
    #[test]
    fn attention_is_permutation_equivariant(z in arb_matrix(8, 4), seed in 0u64..20) {
        let d = z.cols();
        let n = z.rows();
        let mut store = ParamStore::new();
        let mut rng = init_rng(seed);
        let attn = LinearAttention::new(&mut store, d, &mut rng);
        let run = |m: Matrix| -> Matrix {
            let mut t = Tape::new();
            let mut sess = Session::new(&store);
            let nz = t.leaf(m);
            let out = attn.forward(&mut t, &mut sess, &store, nz);
            t.value(out).clone()
        };
        let base = run(z.clone());
        // rotate rows by one
        let mut rotated = Matrix::zeros(n, d);
        for r in 0..n {
            for c in 0..d {
                rotated.set(r, c, z.get((r + 1) % n, c));
            }
        }
        let rotated_out = run(rotated);
        for r in 0..n {
            for c in 0..d {
                let a = base.get((r + 1) % n, c);
                let b = rotated_out.get(r, c);
                prop_assert!((a - b).abs() < 1e-4, "row {r} col {c}: {a} vs {b}");
            }
        }
    }

    /// relu/sigmoid/tanh outputs stay in their ranges and gradients are
    /// finite for arbitrary inputs.
    #[test]
    fn nonlinearities_are_well_behaved(a in arb_matrix(4, 6)) {
        let mut t = Tape::new();
        let na = t.leaf(a);
        let r = t.relu(na);
        let s = t.sigmoid(r);
        let h = t.tanh(s);
        let l0 = t.mean_rows(h);
        let l = t.sum_all(l0);
        prop_assert!(t.value(r).as_slice().iter().all(|&x| x >= 0.0));
        prop_assert!(t.value(s).as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
        prop_assert!(t.value(h).as_slice().iter().all(|&x| (-1.0..=1.0).contains(&x)));
        let g = t.backward(l);
        prop_assert!(g.get(na, &t).as_slice().iter().all(|x| x.is_finite()));
    }

    /// BCE-with-logits is non-negative and zero only in the saturated
    /// correct-label limit.
    #[test]
    fn bce_is_nonnegative(z in -10.0f32..10.0, label in 0u8..=1) {
        let mut t = Tape::new();
        let nz = t.leaf(Matrix::from_vec(1, 1, vec![z]));
        let l = t.bce_with_logits(nz, label as f32);
        let v = t.value(l).get(0, 0);
        prop_assert!(v >= 0.0);
        prop_assert!(v.is_finite());
    }
}
