//! Fuzz-style robustness properties for the parameter deserializer: on
//! *any* byte sequence `load_params` must return `Ok` or `Err` — never
//! panic, and never allocate proportionally to shapes declared by the
//! file (a hostile `tensor R C` header is input, not a size to trust).

use neuro::{load_params, Matrix, ParamStore};
use proptest::prelude::*;

fn small_store() -> ParamStore {
    let mut s = ParamStore::new();
    s.add(Matrix::zeros(2, 3));
    s.add(Matrix::zeros(1, 1));
    s
}

/// Bytes skewed toward the format's own vocabulary so the fuzzer gets
/// past the header check and into shape/row parsing.
fn arb_paramish_bytes() -> impl Strategy<Value = Vec<u8>> {
    let byte = prop_oneof![
        Just(b'0'),
        Just(b'1'),
        Just(b'.'),
        Just(b'-'),
        Just(b'e'),
        Just(b' '),
        Just(b'\n'),
        Just(b't'),
        any::<u8>(),
    ];
    proptest::collection::vec(byte, 0..256)
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut store = small_store();
        let _ = load_params(bytes.as_slice(), &mut store);
    }

    #[test]
    fn corrupted_tail_never_panics(tail in arb_paramish_bytes()) {
        // A valid preamble followed by junk reaches the tensor parser.
        let mut input = b"neuro-params v1\ntensors 2\n".to_vec();
        input.extend(tail);
        let mut store = small_store();
        let _ = load_params(input.as_slice(), &mut store);
    }

    #[test]
    fn hostile_shapes_never_allocate(rows in 0u64..u64::MAX, cols in 0u64..u64::MAX) {
        // Declared shapes up to u64::MAX must fail on the ceiling (or a
        // shape/row mismatch), not in the allocator.
        let input = format!("neuro-params v1\ntensors 2\ntensor {rows} {cols}\n");
        let mut store = small_store();
        prop_assert!(load_params(input.as_bytes(), &mut store).is_err());
    }
}
