//! Dense row-major `f32` matrices — the value type of the autodiff tape.

use std::fmt;

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use neuro::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a.get(1, 0), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// The flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = &self.data[k * self.cols..(k + 1) * self.cols];
            let brow = &other.data[k * other.cols..(k + 1) * other.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                out.data[i * other.rows + j] = arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise combination with another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place element-wise accumulation `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Frobenius norm `sqrt(Σ x²)`.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean over rows: a `1 × cols` matrix.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        let n = self.rows.max(1) as f32;
        for v in &mut out.data {
            *v /= n;
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_basic() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0]]);
        assert!(approx_eq(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-6));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 2.0]]);
        assert!(approx_eq(&a.matmul_nt(&b), &a.matmul(&b.transpose()), 1e-6));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn frobenius_norm() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frob_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn mean_rows_averages() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 6.0]]);
        assert_eq!(a.mean_rows(), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn map_and_zip() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.map(f32::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        assert_eq!(a.zip(&b, |x, y| x + y), Matrix::from_rows(&[&[11.0, 18.0]]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
