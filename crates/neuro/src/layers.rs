//! Basic neural layers: linear maps and multi-layer perceptrons.

#[cfg(test)]
use crate::Matrix;
use crate::{NodeId, ParamId, ParamStore, Session, Tape};
use rand::rngs::SmallRng;

/// Binds a stored parameter onto the tape through the session.
pub(crate) fn bind(tape: &mut Tape, sess: &mut Session, store: &ParamStore, id: ParamId) -> NodeId {
    sess.bind_value(tape, id, store.value(id).clone())
}

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Rectified linear unit (the paper's σ in Equation 7).
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No activation.
    Identity,
}

impl Activation {
    /// Applies the activation on the tape.
    pub fn apply(self, tape: &mut Tape, x: NodeId) -> NodeId {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

/// An affine layer `y = x·W + b`.
///
/// The paper's "MLP" inside Equation (6) "is a single linear layer"; this
/// type is that building block.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix (`in × out`).
    pub w: ParamId,
    /// Bias row (`1 × out`).
    pub b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a Glorot-initialized linear layer.
    pub fn new(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut SmallRng) -> Self {
        Linear {
            w: store.add_glorot(in_dim, out_dim, rng),
            b: store.add_zeros(1, out_dim),
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to an `n × in` node.
    pub fn forward(
        &self,
        tape: &mut Tape,
        sess: &mut Session,
        store: &ParamStore,
        x: NodeId,
    ) -> NodeId {
        let w = bind(tape, sess, store, self.w);
        let b = bind(tape, sess, store, self.b);
        let xw = tape.matmul(x, w);
        tape.add_row(xw, b)
    }
}

/// A multi-layer perceptron with a configurable hidden activation and an
/// identity output layer.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Creates an MLP with the given layer widths, e.g. `&[32, 32, 1]`
    /// builds two linear layers 32→32→1 with the activation between them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(
        store: &mut ParamStore,
        widths: &[usize],
        activation: Activation,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(widths.len() >= 2, "an MLP needs input and output widths");
        let layers = widths
            .windows(2)
            .map(|w| Linear::new(store, w[0], w[1], rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Number of linear layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Applies the MLP.
    pub fn forward(
        &self,
        tape: &mut Tape,
        sess: &mut Session,
        store: &ParamStore,
        x: NodeId,
    ) -> NodeId {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, sess, store, h);
            if i + 1 < self.layers.len() {
                h = self.activation.apply(tape, h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init_rng;

    #[test]
    fn linear_computes_affine_map() {
        let mut store = ParamStore::new();
        let mut rng = init_rng(0);
        let layer = Linear::new(&mut store, 2, 3, &mut rng);
        // overwrite with known values
        *store.value_mut(layer.w) = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, -1.0]]);
        *store.value_mut(layer.b) = Matrix::from_rows(&[&[0.5, 0.5, 0.5]]);
        let mut tape = Tape::new();
        let mut sess = Session::new(&store);
        let x = tape.leaf(Matrix::from_rows(&[&[2.0, 3.0]]));
        let y = layer.forward(&mut tape, &mut sess, &store, x);
        assert_eq!(tape.value(y).as_slice(), &[2.5, 3.5, 1.5]);
    }

    #[test]
    fn mlp_depth_and_shapes() {
        let mut store = ParamStore::new();
        let mut rng = init_rng(3);
        let mlp = Mlp::new(&mut store, &[4, 8, 8, 1], Activation::Relu, &mut rng);
        assert_eq!(mlp.depth(), 3);
        let mut tape = Tape::new();
        let mut sess = Session::new(&store);
        let x = tape.leaf(Matrix::zeros(5, 4));
        let y = mlp.forward(&mut tape, &mut sess, &store, x);
        assert_eq!(tape.value(y).shape(), (5, 1));
    }

    #[test]
    fn mlp_can_learn_xor() {
        // classic sanity check that backprop works end-to-end
        let mut store = ParamStore::new();
        let mut rng = init_rng(5);
        let mlp = Mlp::new(&mut store, &[2, 8, 1], Activation::Tanh, &mut rng);
        let mut adam = crate::Adam::new(0.05);
        let data = [
            ([0.0f32, 0.0], 0.0f32),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..400 {
            for (input, target) in data {
                let mut tape = Tape::new();
                let mut sess = Session::new(&store);
                let x = tape.leaf(Matrix::from_rows(&[&input]));
                let z = mlp.forward(&mut tape, &mut sess, &store, x);
                let loss = tape.bce_with_logits(z, target);
                let grads = tape.backward(loss);
                adam.step(&mut store, &tape, &sess, &grads);
            }
        }
        // verify all four points classified correctly
        for (input, target) in data {
            let mut tape = Tape::new();
            let mut sess = Session::new(&store);
            let x = tape.leaf(Matrix::from_rows(&[&input]));
            let z = mlp.forward(&mut tape, &mut sess, &store, x);
            let prob = 1.0 / (1.0 + (-tape.value(z).get(0, 0)).exp());
            assert_eq!(prob > 0.5, target > 0.5, "input {input:?} prob {prob}");
        }
    }

    #[test]
    fn activations_apply() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_rows(&[&[-1.0, 1.0]]));
        let r = Activation::Relu.apply(&mut tape, x);
        assert_eq!(tape.value(r).as_slice(), &[0.0, 1.0]);
        let i = Activation::Identity.apply(&mut tape, x);
        assert_eq!(i, x);
    }
}
