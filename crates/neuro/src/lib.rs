//! From-scratch neural network substrate for the NeuroSelect reproduction:
//! a reverse-mode autodiff tape over dense matrices, the paper's layers
//! (bipartite MPNN, linear attention, Hybrid Graph Transformer), the
//! baselines of Table 2 (GIN, NeuroSAT-style), and the Adam optimizer.
//!
//! Everything is CPU-only `f32` with no external ML dependencies, matching
//! the paper's claim that one-time inference "can be efficient even on
//! CPUs".
//!
//! # Architecture
//!
//! * [`Matrix`] — dense row-major values.
//! * [`Tape`]/[`NodeId`] — records one forward pass; [`Tape::backward`]
//!   yields [`Gradients`].
//! * [`ParamStore`]/[`Session`]/[`Adam`] — parameter life cycle: stored
//!   values are bound as tape leaves each pass and updated from leaf
//!   gradients.
//! * [`BipartiteMpnn`] (Eq. 6–7), [`LinearAttention`] (Eq. 8–9),
//!   [`HgtLayer`] (Eq. 3–5), [`NeuroSelectModel`] (Eq. 10–11).
//! * [`GinModel`], [`NeuroSatModel`] — Table 2 baselines.
//!
//! # Examples
//!
//! Train the NeuroSelect classifier on one labelled formula:
//!
//! ```
//! use neuro::{Adam, GraphTensors, NeuroSelectConfig, NeuroSelectModel, ParamStore};
//! use sat_graph::BipartiteGraph;
//!
//! let f = cnf::parse_dimacs_str("p cnf 3 2\n1 -2 0\n2 3 0\n")?;
//! let graph = GraphTensors::new(&BipartiteGraph::from_cnf(&f));
//! let mut store = ParamStore::new();
//! let model = NeuroSelectModel::new(&mut store, NeuroSelectConfig {
//!     hidden_dim: 8, hgt_layers: 1, mpnn_per_hgt: 2, use_attention: true, seed: 0,
//! });
//! let mut adam = Adam::new(1e-2);
//! let loss = model.train_step(&mut store, &mut adam, &graph, 1);
//! assert!(loss.is_finite());
//! # Ok::<(), cnf::ParseDimacsError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod attention;
mod baselines;
mod layers;
mod matrix;
mod model;
mod mpnn;
mod params;
mod serialize;
mod tape;

pub use attention::LinearAttention;
pub use baselines::{BaselineConfig, GinModel, NeuroSatModel};
pub use layers::{Activation, Linear, Mlp};
pub use matrix::Matrix;
pub use model::{HgtLayer, NeuroSelectConfig, NeuroSelectModel};
pub use mpnn::{BipartiteMpnn, GraphTensors, LcgTensors};
pub use params::{init_rng, Adam, ParamId, ParamStore, Session};
pub use serialize::{load_params, save_params, LoadParamsError};
pub use tape::{Gradients, NodeId, Tape};
