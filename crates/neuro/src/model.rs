//! The NeuroSelect model: Hybrid Graph Transformer layers plus a
//! classification head (Sections 4.1, 4.3, 4.4).

use crate::{
    Activation, BipartiteMpnn, GraphTensors, LinearAttention, Matrix, Mlp, NodeId, ParamStore,
    Session, Tape,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One Hybrid Graph Transformer layer (Equations 3–5): a stack of bipartite
/// MPNN layers followed by linear attention over the variable nodes only.
#[derive(Debug, Clone)]
pub struct HgtLayer {
    mpnn: Vec<BipartiteMpnn>,
    attention: Option<LinearAttention>,
}

impl HgtLayer {
    /// Creates a layer with `mpnn_layers` message-passing sweeps and,
    /// unless `use_attention` is false (the w/o-attention ablation of
    /// Table 2), a linear attention block.
    pub fn new(
        store: &mut ParamStore,
        dim: usize,
        mpnn_layers: usize,
        use_attention: bool,
        rng: &mut SmallRng,
    ) -> Self {
        HgtLayer {
            mpnn: (0..mpnn_layers)
                .map(|_| BipartiteMpnn::new(store, dim, rng))
                .collect(),
            attention: use_attention.then(|| LinearAttention::new(store, dim, rng)),
        }
    }

    /// Applies the layer to `(var, clause)` features (Equations 3–5).
    pub fn forward(
        &self,
        tape: &mut Tape,
        sess: &mut Session,
        store: &ParamStore,
        g: &GraphTensors,
        x_var: NodeId,
        x_clause: NodeId,
    ) -> (NodeId, NodeId) {
        // Equation (3): the MPNN stack.
        let (mut hv, mut hc) = (x_var, x_clause);
        for layer in &self.mpnn {
            let (nv, nc) = layer.forward(tape, sess, store, g, hv, hc);
            hv = nv;
            hc = nc;
        }
        // Equation (4): attention over variable nodes only; Equation (5):
        // clause features pass through from the MPNN.
        if let Some(attn) = &self.attention {
            hv = attn.forward(tape, sess, store, hv);
        }
        (hv, hc)
    }
}

/// Hyperparameters of [`NeuroSelectModel`]. Defaults follow Section 5.2:
/// two HGT layers, three MPNN sweeps per layer, hidden dimension 32.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeuroSelectConfig {
    /// Hidden feature width.
    pub hidden_dim: usize,
    /// Number of HGT layers.
    pub hgt_layers: usize,
    /// MPNN sweeps inside each HGT layer.
    pub mpnn_per_hgt: usize,
    /// Whether HGT layers include the linear-attention block
    /// (`false` reproduces the "NeuroSelect w/o attention" ablation).
    pub use_attention: bool,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for NeuroSelectConfig {
    fn default() -> Self {
        NeuroSelectConfig {
            hidden_dim: 32,
            hgt_layers: 2,
            mpnn_per_hgt: 3,
            use_attention: true,
            seed: 1,
        }
    }
}

/// The NeuroSelect classifier: input projections, a stack of [`HgtLayer`]s,
/// mean readout over variable nodes (Equation 10), and an MLP head whose
/// scalar output is the *logit* of selecting the propagation-frequency
/// deletion policy (label 1).
///
/// # Examples
///
/// ```
/// use neuro::{GraphTensors, NeuroSelectConfig, NeuroSelectModel, ParamStore};
/// use sat_graph::BipartiteGraph;
///
/// let f = cnf::parse_dimacs_str("p cnf 3 2\n1 -2 0\n2 3 0\n")?;
/// let tensors = GraphTensors::new(&BipartiteGraph::from_cnf(&f));
/// let mut store = ParamStore::new();
/// let model = NeuroSelectModel::new(&mut store, NeuroSelectConfig::default());
/// let prob = model.predict(&store, &tensors);
/// assert!((0.0..=1.0).contains(&prob));
/// # Ok::<(), cnf::ParseDimacsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NeuroSelectModel {
    config: NeuroSelectConfig,
    layers: Vec<HgtLayer>,
    size_embed: crate::Linear,
    head: Mlp,
}

impl NeuroSelectModel {
    /// Creates the model, registering all parameters in `store`.
    ///
    /// # Panics
    ///
    /// Panics if `hidden_dim < 3` (three channels carry the structural
    /// initial features).
    pub fn new(store: &mut ParamStore, config: NeuroSelectConfig) -> Self {
        assert!(config.hidden_dim >= 3, "hidden_dim must be at least 3");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let d = config.hidden_dim;
        let layers = (0..config.hgt_layers)
            .map(|_| {
                HgtLayer::new(
                    store,
                    d,
                    config.mpnn_per_hgt,
                    config.use_attention,
                    &mut rng,
                )
            })
            .collect();
        let size_embed = crate::Linear::new(store, 2, d, &mut rng);
        let head = Mlp::new(store, &[d, d, 1], Activation::Relu, &mut rng);
        NeuroSelectModel {
            config,
            layers,
            size_embed,
            head,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &NeuroSelectConfig {
        &self.config
    }

    /// Runs the forward pass, returning the scalar logit node.
    ///
    /// Initial features follow Section 4.2 — channel 0 is `1` for variable
    /// nodes and `0` for clause nodes — augmented with two structural
    /// channels (log-degree and positive-occurrence fraction). Equation
    /// (6)'s *mean* aggregation makes constant features degree-blind, so
    /// without this augmentation the network cannot see instance size at
    /// all; DESIGN.md §7 records the deviation.
    pub fn forward(
        &self,
        tape: &mut Tape,
        sess: &mut Session,
        store: &ParamStore,
        g: &GraphTensors,
    ) -> NodeId {
        let d = self.config.hidden_dim;
        let nv = g.num_vars.max(1);
        let nc = g.num_clauses.max(1);
        let mut hv_init = Matrix::zeros(nv, d);
        for (r, &(log_deg, pos_frac)) in g.var_structure.iter().enumerate() {
            hv_init.set(r, 0, 1.0);
            hv_init.set(r, 1, 0.25 * log_deg);
            hv_init.set(r, 2, pos_frac);
        }
        let mut hc_init = Matrix::zeros(nc, d);
        for (r, &(log_len, pos_frac)) in g.clause_structure.iter().enumerate() {
            hc_init.set(r, 1, 0.25 * log_len);
            hc_init.set(r, 2, pos_frac);
        }
        let mut hv = tape.leaf(hv_init);
        let mut hc = tape.leaf(hc_init);
        for layer in &self.layers {
            let (nxt_v, nxt_c) = layer.forward(tape, sess, store, g, hv, hc);
            hv = nxt_v;
            hc = nxt_c;
        }
        // Equation (10): READOUT = mean over variable nodes, plus a learned
        // embedding of the instance's global size.
        let pooled = tape.mean_rows(hv);
        let stats = tape.leaf(Matrix::from_vec(
            1,
            2,
            vec![
                0.1 * (1.0 + g.num_vars as f32).ln(),
                0.1 * (1.0 + g.num_clauses as f32).ln(),
            ],
        ));
        let size_vec = self.size_embed.forward(tape, sess, store, stats);
        let combined = tape.add(pooled, size_vec);
        self.head.forward(tape, sess, store, combined)
    }

    /// Inference: the probability that the propagation-frequency policy
    /// (label 1) is the better choice for this instance.
    pub fn predict(&self, store: &ParamStore, g: &GraphTensors) -> f32 {
        self.predict_timed(store, g).0
    }

    /// Like [`predict`](Self::predict), but also reports the wall-clock
    /// time of the forward pass — the quantity the paper folds into
    /// NeuroSelect-Kissat's runtime and the telemetry pipeline reports as
    /// the `gnn_forward` phase.
    pub fn predict_timed(
        &self,
        store: &ParamStore,
        g: &GraphTensors,
    ) -> (f32, std::time::Duration) {
        let start = std::time::Instant::now();
        let mut tape = Tape::new();
        let mut sess = Session::new(store);
        let logit = self.forward(&mut tape, &mut sess, store, g);
        let z = tape.value(logit).get(0, 0);
        (1.0 / (1.0 + (-z).exp()), start.elapsed())
    }

    /// One training step on a single labelled graph (batch size 1, as in
    /// Section 5.2): computes the BCE loss (Equation 11), backpropagates,
    /// applies the optimizer, and returns the loss value.
    pub fn train_step(
        &self,
        store: &mut ParamStore,
        adam: &mut crate::Adam,
        g: &GraphTensors,
        label: u8,
    ) -> f32 {
        let mut tape = Tape::new();
        let mut sess = Session::new(store);
        let logit = self.forward(&mut tape, &mut sess, store, g);
        let loss = tape.bce_with_logits(logit, label as f32);
        let grads = tape.backward(loss);
        adam.step(store, &tape, &sess, &grads);
        tape.value(loss).get(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_graph::BipartiteGraph;

    fn tensors(text: &str) -> GraphTensors {
        let f = cnf::parse_dimacs_str(text).unwrap();
        GraphTensors::new(&BipartiteGraph::from_cnf(&f))
    }

    fn tiny_config() -> NeuroSelectConfig {
        NeuroSelectConfig {
            hidden_dim: 8,
            hgt_layers: 1,
            mpnn_per_hgt: 2,
            use_attention: true,
            seed: 42,
        }
    }

    #[test]
    fn forward_produces_scalar_logit() {
        let g = tensors("p cnf 4 3\n1 -2 0\n2 3 4 0\n-1 -4 0\n");
        let mut store = ParamStore::new();
        let model = NeuroSelectModel::new(&mut store, tiny_config());
        let mut tape = Tape::new();
        let mut sess = Session::new(&store);
        let logit = model.forward(&mut tape, &mut sess, &store, &g);
        assert_eq!(tape.value(logit).shape(), (1, 1));
    }

    #[test]
    fn predict_is_probability_and_deterministic() {
        let g = tensors("p cnf 3 2\n1 2 0\n-2 3 0\n");
        let mut store = ParamStore::new();
        let model = NeuroSelectModel::new(&mut store, tiny_config());
        let p1 = model.predict(&store, &g);
        let p2 = model.predict(&store, &g);
        assert_eq!(p1, p2);
        assert!((0.0..=1.0).contains(&p1));
    }

    #[test]
    fn predict_timed_matches_predict() {
        let g = tensors("p cnf 3 2\n1 2 0\n-2 3 0\n");
        let mut store = ParamStore::new();
        let model = NeuroSelectModel::new(&mut store, tiny_config());
        let (p, elapsed) = model.predict_timed(&store, &g);
        assert_eq!(p, model.predict(&store, &g));
        assert!(elapsed > std::time::Duration::ZERO);
    }

    #[test]
    fn training_reduces_loss_on_single_example() {
        let g = tensors("p cnf 5 4\n1 -2 0\n2 3 0\n-3 4 5 0\n-1 -5 0\n");
        let mut store = ParamStore::new();
        let model = NeuroSelectModel::new(&mut store, tiny_config());
        let mut adam = crate::Adam::new(0.01);
        let first = model.train_step(&mut store, &mut adam, &g, 1);
        let mut last = first;
        for _ in 0..30 {
            last = model.train_step(&mut store, &mut adam, &g, 1);
        }
        assert!(last < first, "loss should decrease: {first} -> {last}");
        assert!(model.predict(&store, &g) > 0.5);
    }

    #[test]
    fn can_separate_two_structures() {
        // Overfit two structurally different graphs with opposite labels.
        let g0 = tensors("p cnf 4 6\n1 2 0\n-1 2 0\n1 -2 0\n3 4 0\n-3 4 0\n3 -4 0\n");
        let g1 = tensors("p cnf 4 2\n1 2 3 4 0\n-1 -2 -3 -4 0\n");
        let mut store = ParamStore::new();
        let model = NeuroSelectModel::new(&mut store, tiny_config());
        let mut adam = crate::Adam::new(0.02);
        for _ in 0..60 {
            model.train_step(&mut store, &mut adam, &g0, 0);
            model.train_step(&mut store, &mut adam, &g1, 1);
        }
        assert!(model.predict(&store, &g0) < 0.5);
        assert!(model.predict(&store, &g1) > 0.5);
    }

    #[test]
    fn ablation_without_attention_builds_and_runs() {
        let g = tensors("p cnf 3 2\n1 2 0\n-2 3 0\n");
        let mut store = ParamStore::new();
        let config = NeuroSelectConfig {
            use_attention: false,
            ..tiny_config()
        };
        let model = NeuroSelectModel::new(&mut store, config);
        let p = model.predict(&store, &g);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn paper_default_dimensions() {
        let c = NeuroSelectConfig::default();
        assert_eq!(c.hidden_dim, 32);
        assert_eq!(c.hgt_layers, 2);
        assert_eq!(c.mpnn_per_hgt, 3);
        assert!(c.use_attention);
    }
}
