//! Parameter storage, initialization, and the Adam optimizer.

use crate::{Gradients, Matrix, NodeId, Tape};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Handle to a parameter in a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParamId(usize);

/// Owns all trainable parameters of a model plus their Adam moments.
///
/// Layers hold [`ParamId`]s; every forward pass binds the current values
/// onto a fresh [`Tape`] through a [`Session`], and after `backward` the
/// optimizer folds the leaf gradients back into the store.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    values: Vec<Matrix>,
    adam_m: Vec<Matrix>,
    adam_v: Vec<Matrix>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with the given initial value.
    pub fn add(&mut self, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.values.push(value);
        self.adam_m.push(Matrix::zeros(r, c));
        self.adam_v.push(Matrix::zeros(r, c));
        ParamId(self.values.len() - 1)
    }

    /// Registers a parameter with Glorot/Xavier-uniform initialization
    /// (`U(-a, a)`, `a = sqrt(6 / (fan_in + fan_out))`).
    pub fn add_glorot(&mut self, rows: usize, cols: usize, rng: &mut SmallRng) -> ParamId {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
        self.add(Matrix::from_vec(rows, cols, data))
    }

    /// Registers a zero-initialized parameter (the convention for biases).
    pub fn add_zeros(&mut self, rows: usize, cols: usize) -> ParamId {
        self.add(Matrix::zeros(rows, cols))
    }

    /// The current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable access to a parameter value (used by loading / tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(|m| m.as_slice().len()).sum()
    }

    /// Iterates over `(id, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.values.iter().enumerate().map(|(i, m)| (ParamId(i), m))
    }

    /// Replaces every parameter value from an iterator (used by model
    /// loading).
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields a wrong number of matrices or any
    /// shape differs.
    pub fn load_values(&mut self, values: impl IntoIterator<Item = Matrix>) {
        let mut count = 0;
        for (slot, new) in self.values.iter_mut().zip(values) {
            assert_eq!(slot.shape(), new.shape(), "parameter shape mismatch");
            *slot = new;
            count += 1;
        }
        assert_eq!(count, self.values.len(), "wrong number of parameters");
    }
}

/// Binds parameters onto a tape for one forward/backward pass.
///
/// # Examples
///
/// ```
/// use neuro::{Adam, Matrix, ParamStore, Session, Tape};
/// let mut store = ParamStore::new();
/// let w = store.add(Matrix::from_rows(&[&[2.0]]));
/// let mut tape = Tape::new();
/// let mut session = Session::new(&store);
/// let w_node = session.bind_value(&mut tape, w, store.value(w).clone());
/// let sq = tape.mul(w_node, w_node);
/// let loss = tape.sum_all(sq); // loss = w², minimum at w = 0
/// let grads = tape.backward(loss);
/// let mut adam = Adam::new(0.1);
/// adam.step(&mut store, &tape, &session, &grads);
/// assert!(store.value(w).get(0, 0) < 2.0);
/// ```
#[derive(Debug, Default)]
pub struct Session {
    bindings: Vec<(ParamId, NodeId)>,
}

impl Session {
    /// Creates a session for the given store.
    ///
    /// The store reference only documents intent; sessions are cheap
    /// binding lists.
    pub fn new(_store: &ParamStore) -> Self {
        Session {
            bindings: Vec::new(),
        }
    }

    /// Binds parameter `id` (with its current `value`) as a leaf on `tape`.
    /// Binding the same parameter twice returns the existing node, so weight
    /// sharing accumulates gradients correctly.
    pub fn bind_value(&mut self, tape: &mut Tape, id: ParamId, value: Matrix) -> NodeId {
        if let Some(&(_, node)) = self.bindings.iter().find(|(p, _)| *p == id) {
            return node;
        }
        let node = tape.leaf(value);
        self.bindings.push((id, node));
        node
    }

    /// The recorded `(param, node)` bindings.
    pub fn bindings(&self) -> &[(ParamId, NodeId)] {
        &self.bindings
    }
}

/// The Adam optimizer (Kingma & Ba). The paper trains with Adam at
/// learning rate `1e-4`.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW); 0 disables it.
    pub weight_decay: f32,
    t: u64,
}

impl Adam {
    /// Creates Adam with the given learning rate, standard betas
    /// (0.9, 0.999), and no weight decay.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
        }
    }

    /// Creates AdamW: Adam with decoupled weight decay
    /// (Loshchilov & Hutter).
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Adam {
            weight_decay,
            ..Adam::new(lr)
        }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update to every parameter bound in `session`,
    /// using gradients from `grads`.
    pub fn step(
        &mut self,
        store: &mut ParamStore,
        tape: &Tape,
        session: &Session,
        grads: &Gradients,
    ) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for &(pid, node) in session.bindings() {
            let g = grads.get(node, tape);
            let m = &mut store.adam_m[pid.0];
            for (mi, &gi) in m.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            }
            let v = &mut store.adam_v[pid.0];
            for (vi, &gi) in v.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let m = store.adam_m[pid.0].clone();
            let v = store.adam_v[pid.0].clone();
            let w = store.values[pid.0].as_mut_slice();
            for ((wi, &mi), &vi) in w.iter_mut().zip(m.as_slice()).zip(v.as_slice()) {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                // decoupled decay (AdamW): applied directly to the weight,
                // not through the moment estimates
                *wi -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *wi);
            }
        }
    }
}

/// Convenience: a seeded RNG for reproducible initialization.
pub fn init_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize (w - 3)² from w = 0
        let mut store = ParamStore::new();
        let w = store.add(Matrix::zeros(1, 1));
        let mut adam = Adam::new(0.1);
        for _ in 0..300 {
            let mut tape = Tape::new();
            let mut session = Session::new(&store);
            let wn = session.bind_value(&mut tape, w, store.value(w).clone());
            let c = tape.leaf(Matrix::from_vec(1, 1, vec![3.0]));
            let d = tape.sub(wn, c);
            let sq = tape.mul(d, d);
            let loss = tape.sum_all(sq);
            let grads = tape.backward(loss);
            adam.step(&mut store, &tape, &session, &grads);
        }
        assert!(
            (store.value(w).get(0, 0) - 3.0).abs() < 0.05,
            "w = {}",
            store.value(w).get(0, 0)
        );
        assert_eq!(adam.steps(), 300);
    }

    #[test]
    fn weight_decay_shrinks_unused_parameters() {
        // a parameter with zero gradient should decay toward zero under
        // AdamW and stay put under plain Adam
        let run = |decay: f32| -> f32 {
            let mut store = ParamStore::new();
            let w = store.add(Matrix::from_vec(1, 1, vec![1.0]));
            let dead = store.add(Matrix::from_vec(1, 1, vec![1.0]));
            let mut adam = Adam::with_weight_decay(0.01, decay);
            for _ in 0..100 {
                let mut tape = Tape::new();
                let mut sess = Session::new(&store);
                let wn = sess.bind_value(&mut tape, w, store.value(w).clone());
                let dn = sess.bind_value(&mut tape, dead, store.value(dead).clone());
                let zero = tape.scale(dn, 0.0);
                let sum = tape.add(wn, zero);
                let sq = tape.mul(sum, sum);
                let loss = tape.sum_all(sq);
                let grads = tape.backward(loss);
                adam.step(&mut store, &tape, &sess, &grads);
            }
            store.value(dead).get(0, 0)
        };
        assert!((run(0.0) - 1.0).abs() < 1e-6, "no decay: untouched");
        assert!(run(0.1) < 0.95, "decay pulls dead weights down");
    }

    #[test]
    fn shared_parameter_accumulates_gradient() {
        // loss = (w + w)·1 ⇒ dw = 2
        let mut store = ParamStore::new();
        let w = store.add(Matrix::from_vec(1, 1, vec![1.0]));
        let mut tape = Tape::new();
        let mut session = Session::new(&store);
        let w1 = session.bind_value(&mut tape, w, store.value(w).clone());
        let w2 = session.bind_value(&mut tape, w, store.value(w).clone());
        assert_eq!(w1, w2, "same param binds to same node");
        let s = tape.add(w1, w2);
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(w1, &tape).as_slice(), &[2.0]);
    }

    #[test]
    fn glorot_bounds() {
        let mut rng = init_rng(1);
        let mut store = ParamStore::new();
        let p = store.add_glorot(10, 30, &mut rng);
        let a = (6.0f32 / 40.0).sqrt();
        assert!(store.value(p).as_slice().iter().all(|x| x.abs() <= a));
        // non-degenerate
        assert!(store.value(p).as_slice().iter().any(|&x| x != 0.0));
        assert_eq!(store.num_weights(), 300);
    }

    #[test]
    fn load_values_checks_shapes() {
        let mut store = ParamStore::new();
        store.add(Matrix::zeros(2, 2));
        store.load_values(vec![Matrix::eye(2)]);
        assert_eq!(store.value(ParamId(0)), &Matrix::eye(2));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn load_values_rejects_wrong_shape() {
        let mut store = ParamStore::new();
        store.add(Matrix::zeros(2, 2));
        store.load_values(vec![Matrix::zeros(1, 2)]);
    }
}
