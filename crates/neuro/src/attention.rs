//! Linear global attention (Equations 8–9), after SGFormer.
//!
//! The layer computes all-pair attention between variable nodes in `O(N·d²)`
//! by associating the product `Q̃(K̃ᵀV)` right-to-left instead of
//! materializing the `N × N` attention matrix. A reference quadratic
//! implementation with identical algebra is provided for the equivalence
//! property test and the scaling ablation (DESIGN.md D5).

use crate::{Linear, Matrix, NodeId, ParamStore, Session, Tape};
use rand::rngs::SmallRng;

/// The linear attention layer of Equation (8)/(9):
///
/// ```text
/// Q = f_Q(Z)   Q̃ = Q/‖Q‖_F     K = f_K(Z)   K̃ = K/‖K‖_F   V = f_V(Z)
/// D = diag(1 + (1/N) Q̃ (K̃ᵀ 1))
/// LinearAttn(Z) = D⁻¹ [V + (1/N) Q̃ (K̃ᵀ V)]
/// ```
#[derive(Debug, Clone)]
pub struct LinearAttention {
    f_q: Linear,
    f_k: Linear,
    f_v: Linear,
}

impl LinearAttention {
    /// Creates the layer with width `dim` for queries, keys, and values.
    pub fn new(store: &mut ParamStore, dim: usize, rng: &mut SmallRng) -> Self {
        LinearAttention {
            f_q: Linear::new(store, dim, dim, rng),
            f_k: Linear::new(store, dim, dim, rng),
            f_v: Linear::new(store, dim, dim, rng),
        }
    }

    fn qkv(
        &self,
        tape: &mut Tape,
        sess: &mut Session,
        store: &ParamStore,
        z: NodeId,
    ) -> (NodeId, NodeId, NodeId) {
        let q = self.f_q.forward(tape, sess, store, z);
        let k = self.f_k.forward(tape, sess, store, z);
        let v = self.f_v.forward(tape, sess, store, z);
        let qn = tape.frob_normalize(q);
        let kn = tape.frob_normalize(k);
        (qn, kn, v)
    }

    /// Applies linear attention to an `N × d` node (Equation 9),
    /// in `O(N·d²)` time and memory.
    pub fn forward(
        &self,
        tape: &mut Tape,
        sess: &mut Session,
        store: &ParamStore,
        z: NodeId,
    ) -> NodeId {
        let n = tape.value(z).rows();
        let (qn, kn, v) = self.qkv(tape, sess, store, z);
        let inv_n = 1.0 / n as f32;

        // (1/N) Q̃ (K̃ᵀ V): associate right-to-left — d×d intermediate.
        let kt = tape.transpose(kn);
        let ktv = tape.matmul(kt, v);
        let qktv = tape.matmul(qn, ktv);
        let qktv = tape.scale(qktv, inv_n);

        // D = diag(1 + (1/N) Q̃ (K̃ᵀ 1))
        let ones = tape.leaf(Matrix::full(n, 1, 1.0));
        let kt1 = tape.matmul(kt, ones);
        let qkt1 = tape.matmul(qn, kt1);
        let qkt1 = tape.scale(qkt1, inv_n);
        let d = tape.add_scalar(qkt1, 1.0);

        // D⁻¹ [V + …]
        let num = tape.add(v, qktv);
        tape.div_cols(num, d)
    }

    /// Reference implementation that materializes the full `N × N`
    /// attention matrix `(1/N) Q̃ K̃ᵀ`. Produces the same values as
    /// [`forward`](Self::forward) (up to floating-point associativity) in
    /// `O(N²·d)` time — used in tests and the scaling ablation only.
    pub fn forward_quadratic(
        &self,
        tape: &mut Tape,
        sess: &mut Session,
        store: &ParamStore,
        z: NodeId,
    ) -> NodeId {
        let n = tape.value(z).rows();
        let (qn, kn, v) = self.qkv(tape, sess, store, z);
        let inv_n = 1.0 / n as f32;

        // A = (1/N) Q̃ K̃ᵀ, the explicit N × N attention matrix.
        let ktr = tape.transpose(kn);
        let a = tape.matmul(qn, ktr);
        let a = tape.scale(a, inv_n);

        let ones = tape.leaf(Matrix::full(n, 1, 1.0));
        let a1 = tape.matmul(a, ones);
        let d = tape.add_scalar(a1, 1.0);

        let av = tape.matmul(a, v);
        let num = tape.add(v, av);
        tape.div_cols(num, d)
    }

    /// The bound parameter count (6: three weight matrices + biases).
    pub fn param_ids(&self) -> [crate::ParamId; 6] {
        [
            self.f_q.w, self.f_q.b, self.f_k.w, self.f_k.b, self.f_v.w, self.f_v.b,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init_rng;
    use rand::Rng;

    fn random_features(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = init_rng(seed);
        Matrix::from_vec(n, d, (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    #[test]
    fn linear_equals_quadratic() {
        let mut store = ParamStore::new();
        let mut rng = init_rng(11);
        let attn = LinearAttention::new(&mut store, 8, &mut rng);
        for n in [1usize, 2, 7, 33] {
            let z_val = random_features(n, 8, n as u64);
            let mut tape = Tape::new();
            let mut sess = Session::new(&store);
            let z = tape.leaf(z_val.clone());
            let fast = attn.forward(&mut tape, &mut sess, &store, z);
            let slow = attn.forward_quadratic(&mut tape, &mut sess, &store, z);
            let f = tape.value(fast).as_slice();
            let s = tape.value(slow).as_slice();
            for (a, b) in f.iter().zip(s) {
                assert!((a - b).abs() < 1e-4, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn output_shape_matches_input() {
        let mut store = ParamStore::new();
        let mut rng = init_rng(3);
        let attn = LinearAttention::new(&mut store, 4, &mut rng);
        let mut tape = Tape::new();
        let mut sess = Session::new(&store);
        let z = tape.leaf(random_features(10, 4, 5));
        let out = attn.forward(&mut tape, &mut sess, &store, z);
        assert_eq!(tape.value(out).shape(), (10, 4));
    }

    #[test]
    fn gradients_flow_through_attention() {
        let mut store = ParamStore::new();
        let mut rng = init_rng(4);
        let attn = LinearAttention::new(&mut store, 4, &mut rng);
        let mut tape = Tape::new();
        let mut sess = Session::new(&store);
        let z = tape.leaf(random_features(6, 4, 9));
        let out = attn.forward(&mut tape, &mut sess, &store, z);
        let pooled = tape.mean_rows(out);
        let loss = tape.sum_all(pooled);
        let grads = tape.backward(loss);
        for pid in attn.param_ids() {
            let node = sess
                .bindings()
                .iter()
                .find(|(p, _)| *p == pid)
                .map(|&(_, n)| n)
                .expect("param bound");
            let g = grads.get(node, &tape);
            assert_eq!(g.shape(), store.value(pid).shape());
        }
        // input also receives gradient
        let gz = grads.get(z, &tape);
        assert!(gz.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn attention_mixes_information_globally() {
        // Two far-apart rows influence each other: perturbing row 0 changes
        // the output at the last row.
        let mut store = ParamStore::new();
        let mut rng = init_rng(6);
        let attn = LinearAttention::new(&mut store, 4, &mut rng);
        let base = random_features(8, 4, 1);
        let mut perturbed = base.clone();
        perturbed.set(0, 0, perturbed.get(0, 0) + 1.0);

        let run = |m: Matrix, attn: &LinearAttention, store: &ParamStore| -> Vec<f32> {
            let mut tape = Tape::new();
            let mut sess = Session::new(store);
            let z = tape.leaf(m);
            let out = attn.forward(&mut tape, &mut sess, store, z);
            tape.value(out).row(7).to_vec()
        };
        let a = run(base, &attn, &store);
        let b = run(perturbed, &attn, &store);
        assert_ne!(a, b, "global attention must propagate remote changes");
    }
}
