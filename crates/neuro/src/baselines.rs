//! Baseline SAT classifiers for the Table 2 comparison: a GIN on the
//! variable–clause graph (G4SATBench's strongest general model) and a
//! NeuroSAT-style literal–clause message passer with gated updates.

use crate::{
    Activation, GraphTensors, LcgTensors, Linear, Matrix, Mlp, NodeId, ParamStore, Session, Tape,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::rc::Rc;

/// Hyperparameters shared by the baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineConfig {
    /// Hidden feature width.
    pub hidden_dim: usize,
    /// Number of message-passing rounds.
    pub rounds: usize,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            hidden_dim: 32,
            rounds: 6,
            seed: 1,
        }
    }
}

/// A Graph Isomorphism Network on the (unsigned) variable–clause graph,
/// standing in for the G4SATBench baseline of Table 2.
///
/// Each round applies `h' = MLP((1 + ε)·h + Σ_{u ∈ N(v)} h_u)` to clause
/// nodes from variables and then to variable nodes from clauses; readout is
/// the mean over variable nodes into an MLP head producing a logit.
#[derive(Debug, Clone)]
pub struct GinModel {
    config: BaselineConfig,
    clause_mlps: Vec<Mlp>,
    var_mlps: Vec<Mlp>,
    eps: f32,
    head: Mlp,
}

impl GinModel {
    /// Creates the model, registering parameters in `store`.
    pub fn new(store: &mut ParamStore, config: BaselineConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let d = config.hidden_dim;
        let clause_mlps = (0..config.rounds)
            .map(|_| Mlp::new(store, &[d, d, d], Activation::Relu, &mut rng))
            .collect();
        let var_mlps = (0..config.rounds)
            .map(|_| Mlp::new(store, &[d, d, d], Activation::Relu, &mut rng))
            .collect();
        let head = Mlp::new(store, &[d, d, 1], Activation::Relu, &mut rng);
        GinModel {
            config,
            clause_mlps,
            var_mlps,
            eps: 0.1,
            head,
        }
    }

    /// Forward pass returning the scalar logit node.
    pub fn forward(
        &self,
        tape: &mut Tape,
        sess: &mut Session,
        store: &ParamStore,
        g: &GraphTensors,
    ) -> NodeId {
        let d = self.config.hidden_dim;
        let mut hv = tape.leaf(Matrix::full(g.num_vars.max(1), d, 1.0));
        let mut hc = tape.leaf(Matrix::zeros(g.num_clauses.max(1), d));
        for round in 0..self.config.rounds {
            // clause update: (1+ε)h_c + Σ_v h_v
            let agg_c = tape.spmm(
                Rc::clone(&g.sum_to_clause),
                Rc::clone(&g.sum_to_clause_t),
                hv,
            );
            let hc_scaled = tape.scale(hc, 1.0 + self.eps);
            let hc_in = tape.add(hc_scaled, agg_c);
            hc = self.clause_mlps[round].forward(tape, sess, store, hc_in);
            // variable update
            let agg_v = tape.spmm(Rc::clone(&g.sum_to_var), Rc::clone(&g.sum_to_var_t), hc);
            let hv_scaled = tape.scale(hv, 1.0 + self.eps);
            let hv_in = tape.add(hv_scaled, agg_v);
            hv = self.var_mlps[round].forward(tape, sess, store, hv_in);
        }
        let pooled = tape.mean_rows(hv);
        self.head.forward(tape, sess, store, pooled)
    }

    /// Inference probability for label 1.
    pub fn predict(&self, store: &ParamStore, g: &GraphTensors) -> f32 {
        let mut tape = Tape::new();
        let mut sess = Session::new(store);
        let logit = self.forward(&mut tape, &mut sess, store, g);
        let z = tape.value(logit).get(0, 0);
        1.0 / (1.0 + (-z).exp())
    }

    /// One batch-size-1 training step; returns the loss.
    pub fn train_step(
        &self,
        store: &mut ParamStore,
        adam: &mut crate::Adam,
        g: &GraphTensors,
        label: u8,
    ) -> f32 {
        let mut tape = Tape::new();
        let mut sess = Session::new(store);
        let logit = self.forward(&mut tape, &mut sess, store, g);
        let loss = tape.bce_with_logits(logit, label as f32);
        let grads = tape.backward(loss);
        adam.step(store, &tape, &sess, &grads);
        tape.value(loss).get(0, 0)
    }
}

/// A NeuroSAT-style classifier on the literal–clause graph with gated
/// (GRU-like) literal updates approximating the original's LSTM, and the
/// literal-flip channel that lets a literal see its negation's state.
#[derive(Debug, Clone)]
pub struct NeuroSatModel {
    config: BaselineConfig,
    clause_update: Linear,
    lit_gate: Linear,
    lit_candidate: Linear,
    lit_flip: Linear,
    head: Mlp,
}

impl NeuroSatModel {
    /// Creates the model, registering parameters in `store`.
    pub fn new(store: &mut ParamStore, config: BaselineConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let d = config.hidden_dim;
        NeuroSatModel {
            config,
            clause_update: Linear::new(store, d, d, &mut rng),
            lit_gate: Linear::new(store, d, d, &mut rng),
            lit_candidate: Linear::new(store, d, d, &mut rng),
            lit_flip: Linear::new(store, d, d, &mut rng),
            head: Mlp::new(store, &[d, d, 1], Activation::Relu, &mut rng),
        }
    }

    /// Forward pass returning the scalar logit node.
    pub fn forward(
        &self,
        tape: &mut Tape,
        sess: &mut Session,
        store: &ParamStore,
        g: &LcgTensors,
    ) -> NodeId {
        let d = self.config.hidden_dim;
        let num_lits = (2 * g.num_vars).max(1);
        let mut hl = tape.leaf(Matrix::full(num_lits, d, 1.0));
        for _ in 0..self.config.rounds {
            // clauses aggregate literal states
            let agg_c = tape.spmm(Rc::clone(&g.to_clause), Rc::clone(&g.to_clause_t), hl);
            let hc_lin = self.clause_update.forward(tape, sess, store, agg_c);
            let hc = tape.relu(hc_lin);
            // literals aggregate clause states plus their negation's state
            let agg_l = tape.spmm(Rc::clone(&g.to_lit), Rc::clone(&g.to_lit_t), hc);
            let flipped = tape.spmm(Rc::clone(&g.flip), Rc::clone(&g.flip), hl);
            let flip_lin = self.lit_flip.forward(tape, sess, store, flipped);
            let gate_lin = self.lit_gate.forward(tape, sess, store, agg_l);
            let z = tape.sigmoid(gate_lin);
            let cand_lin = self.lit_candidate.forward(tape, sess, store, agg_l);
            let cand_sum = tape.add(cand_lin, flip_lin);
            let cand = tape.tanh(cand_sum);
            // h' = (1 - z) ⊙ h + z ⊙ cand
            let neg_z = tape.scale(z, -1.0);
            let one_minus_z = tape.add_scalar(neg_z, 1.0);
            let keep = tape.mul(one_minus_z, hl);
            let take = tape.mul(z, cand);
            hl = tape.add(keep, take);
        }
        let pooled = tape.mean_rows(hl);
        self.head.forward(tape, sess, store, pooled)
    }

    /// Inference probability for label 1.
    pub fn predict(&self, store: &ParamStore, g: &LcgTensors) -> f32 {
        let mut tape = Tape::new();
        let mut sess = Session::new(store);
        let logit = self.forward(&mut tape, &mut sess, store, g);
        let z = tape.value(logit).get(0, 0);
        1.0 / (1.0 + (-z).exp())
    }

    /// One batch-size-1 training step; returns the loss.
    pub fn train_step(
        &self,
        store: &mut ParamStore,
        adam: &mut crate::Adam,
        g: &LcgTensors,
        label: u8,
    ) -> f32 {
        let mut tape = Tape::new();
        let mut sess = Session::new(store);
        let logit = self.forward(&mut tape, &mut sess, store, g);
        let loss = tape.bce_with_logits(logit, label as f32);
        let grads = tape.backward(loss);
        adam.step(store, &tape, &sess, &grads);
        tape.value(loss).get(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_graph::{BipartiteGraph, LiteralClauseGraph};

    fn vcg(text: &str) -> GraphTensors {
        GraphTensors::new(&BipartiteGraph::from_cnf(
            &cnf::parse_dimacs_str(text).unwrap(),
        ))
    }

    fn lcg(text: &str) -> LcgTensors {
        LcgTensors::new(&LiteralClauseGraph::from_cnf(
            &cnf::parse_dimacs_str(text).unwrap(),
        ))
    }

    fn tiny() -> BaselineConfig {
        BaselineConfig {
            hidden_dim: 8,
            rounds: 2,
            seed: 3,
        }
    }

    #[test]
    fn gin_forward_and_overfit() {
        let g = vcg("p cnf 4 3\n1 -2 0\n2 3 4 0\n-1 -4 0\n");
        let mut store = ParamStore::new();
        let model = GinModel::new(&mut store, tiny());
        let mut adam = crate::Adam::new(0.02);
        let first = model.train_step(&mut store, &mut adam, &g, 1);
        let mut last = first;
        for _ in 0..40 {
            last = model.train_step(&mut store, &mut adam, &g, 1);
        }
        assert!(last < first);
        assert!(model.predict(&store, &g) > 0.5);
    }

    #[test]
    fn neurosat_forward_and_overfit() {
        let g = lcg("p cnf 4 3\n1 -2 0\n2 3 4 0\n-1 -4 0\n");
        let mut store = ParamStore::new();
        let model = NeuroSatModel::new(&mut store, tiny());
        let mut adam = crate::Adam::new(0.02);
        let first = model.train_step(&mut store, &mut adam, &g, 0);
        let mut last = first;
        for _ in 0..40 {
            last = model.train_step(&mut store, &mut adam, &g, 0);
        }
        assert!(last < first);
        assert!(model.predict(&store, &g) < 0.5);
    }

    #[test]
    fn predictions_are_probabilities() {
        let mut store = ParamStore::new();
        let gin = GinModel::new(&mut store, tiny());
        let p = gin.predict(&store, &vcg("p cnf 2 1\n1 2 0\n"));
        assert!((0.0..=1.0).contains(&p));
        let mut store2 = ParamStore::new();
        let ns = NeuroSatModel::new(&mut store2, tiny());
        let q = ns.predict(&store2, &lcg("p cnf 2 1\n1 2 0\n"));
        assert!((0.0..=1.0).contains(&q));
    }
}
