//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records every operation of one forward pass; [`Tape::backward`]
//! then accumulates gradients for every node in a single reverse sweep. The
//! op set is exactly what the paper's layers need: dense/sparse matrix
//! products, broadcasting adds, element-wise nonlinearities, Frobenius
//! normalization (Equation 8), per-row division (the `D⁻¹` of Equation 9),
//! mean-row readout (Equation 10) and a fused sigmoid + binary cross-entropy
//! loss (Equation 11).

use crate::Matrix;
use sat_graph::CsrMatrix;
use std::rc::Rc;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeId(usize);

#[derive(Debug)]
enum Op {
    Leaf,
    MatMul(NodeId, NodeId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    AddRow(NodeId, NodeId),
    Scale(NodeId, f32),
    AddScalar(NodeId),
    Relu(NodeId),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Transpose(NodeId),
    FrobNormalize(NodeId, f32),
    DivCols(NodeId, NodeId),
    MeanRows(NodeId),
    SumAll(NodeId),
    Spmm(Rc<CsrMatrix>, NodeId),
    BceWithLogits(NodeId, f32),
}

struct Node {
    value: Matrix,
    op: Op,
}

/// Clamps a divisor's magnitude to at least 1e-6, preserving its sign
/// (`0.0` counts as positive).
#[inline]
fn clamp_divisor(d: f32) -> f32 {
    if d.abs() >= 1e-6 {
        d
    } else if d.is_sign_negative() {
        -1e-6
    } else {
        1e-6
    }
}

/// Gradients produced by [`Tape::backward`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// The gradient of the loss with respect to node `id`
    /// (zeros if the node does not influence the loss).
    pub fn get(&self, id: NodeId, tape: &Tape) -> Matrix {
        match &self.grads[id.0] {
            Some(g) => g.clone(),
            None => {
                let (r, c) = tape.value(id).shape();
                Matrix::zeros(r, c)
            }
        }
    }
}

/// A recording of one forward computation.
///
/// # Examples
///
/// Differentiate `sum(relu(x·w))` with respect to `w`:
///
/// ```
/// use neuro::{Matrix, Tape};
/// let mut t = Tape::new();
/// let x = t.leaf(Matrix::from_rows(&[&[1.0, -2.0]]));
/// let w = t.leaf(Matrix::from_rows(&[&[0.5], &[1.5]]));
/// let y = t.matmul(x, w);
/// let a = t.relu(y);
/// let loss = t.sum_all(a);
/// let grads = t.backward(loss);
/// // x·w = -2.5, relu kills the gradient
/// assert_eq!(grads.get(w, &t).as_slice(), &[0.0, 0.0]);
/// ```
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        self.nodes.push(Node { value, op });
        NodeId(self.nodes.len() - 1)
    }

    /// Records an input (leaf) node. Gradients accumulate into leaves like
    /// any other node; parameter updates read them after [`backward`](Self::backward).
    pub fn leaf(&mut self, m: Matrix) -> NodeId {
        self.push(m, Op::Leaf)
    }

    /// Dense matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Element-wise sum of same-shape nodes.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push(v, Op::Add(a, b))
    }

    /// Element-wise difference of same-shape nodes.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        self.push(v, Op::Sub(a, b))
    }

    /// Element-wise (Hadamard) product of same-shape nodes.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push(v, Op::Mul(a, b))
    }

    /// Adds a `1 × d` row vector to every row of an `n × d` node.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `1 × d`.
    pub fn add_row(&mut self, x: NodeId, row: NodeId) -> NodeId {
        let (n, d) = self.value(x).shape();
        assert_eq!(self.value(row).shape(), (1, d), "row must be 1 × d");
        let mut v = self.value(x).clone();
        for r in 0..n {
            for c in 0..d {
                let b = self.value(row).get(0, c);
                v.set(r, c, v.get(r, c) + b);
            }
        }
        self.push(v, Op::AddRow(x, row))
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.value(a).map(|x| x * c);
        self.push(v, Op::Scale(a, c))
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.value(a).map(|x| x + c);
        self.push(v, Op::AddScalar(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Frobenius normalization `a / ‖a‖_F` (Equation 8's `Q̃`, `K̃`).
    /// A small epsilon keeps the all-zero matrix finite.
    pub fn frob_normalize(&mut self, a: NodeId) -> NodeId {
        let norm = self.value(a).frob_norm().max(1e-12);
        let v = self.value(a).map(|x| x / norm);
        self.push(v, Op::FrobNormalize(a, norm))
    }

    /// Divides every row `i` of `x` by `d[i]` where `d` is `n × 1`
    /// (the `D⁻¹ [...]` of Equation 9).
    ///
    /// Divisors are clamped to magnitude ≥ 1e-6 (sign preserved): the
    /// paper's `D = 1 + (1/N)·Q̃(K̃ᵀ1)` is almost always ≈ 1, but for
    /// degenerate inputs (e.g. a single node with anti-aligned query/key)
    /// it can reach zero, and an unguarded division would poison the whole
    /// forward pass with NaNs.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not `n × 1`.
    pub fn div_cols(&mut self, x: NodeId, d: NodeId) -> NodeId {
        let (n, cols) = self.value(x).shape();
        assert_eq!(self.value(d).shape(), (n, 1), "divisor must be n × 1");
        let mut v = self.value(x).clone();
        for r in 0..n {
            let dr = clamp_divisor(self.value(d).get(r, 0));
            for c in 0..cols {
                v.set(r, c, v.get(r, c) / dr);
            }
        }
        self.push(v, Op::DivCols(x, d))
    }

    /// Mean over rows, producing `1 × d` (the READOUT of Equation 10).
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).mean_rows();
        self.push(v, Op::MeanRows(a))
    }

    /// Sum of all elements, producing `1 × 1`.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push(v, Op::SumAll(a))
    }

    /// Sparse–dense product `A · x`, where `A` is a constant CSR matrix and
    /// `at` its transpose (used for the backward pass).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent (including `at` not matching `A`).
    pub fn spmm(&mut self, a: Rc<CsrMatrix>, at: Rc<CsrMatrix>, x: NodeId) -> NodeId {
        let (n, d) = self.value(x).shape();
        assert_eq!(a.cols(), n, "spmm dimension mismatch");
        assert_eq!(
            (at.rows(), at.cols()),
            (a.cols(), a.rows()),
            "at must be Aᵀ"
        );
        let y = a.matmul_dense(self.value(x).as_slice(), d);
        let v = Matrix::from_vec(a.rows(), d, y);
        self.push(v, Op::Spmm(at, x))
    }

    /// Fused sigmoid + binary cross-entropy against a constant target
    /// `y ∈ [0, 1]`, on a `1 × 1` logit (Equation 11, numerically stable).
    ///
    /// # Panics
    ///
    /// Panics if `z` is not `1 × 1` or the target is outside `[0, 1]`.
    pub fn bce_with_logits(&mut self, z: NodeId, target: f32) -> NodeId {
        assert_eq!(self.value(z).shape(), (1, 1), "logit must be scalar");
        assert!((0.0..=1.0).contains(&target), "target must be in [0, 1]");
        let zv = self.value(z).get(0, 0);
        // max(z,0) - z·y + ln(1 + e^{-|z|})
        let loss = zv.max(0.0) - zv * target + (-zv.abs()).exp().ln_1p();
        let v = Matrix::from_vec(1, 1, vec![loss]);
        self.push(v, Op::BceWithLogits(z, target))
    }

    /// Runs the reverse sweep from a scalar (`1 × 1`) root.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not `1 × 1`.
    pub fn backward(&self, root: NodeId) -> Gradients {
        assert_eq!(self.value(root).shape(), (1, 1), "loss must be scalar");
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[root.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        let accumulate =
            |grads: &mut Vec<Option<Matrix>>, id: NodeId, delta: Matrix| match &mut grads[id.0] {
                Some(g) => g.add_assign(&delta),
                slot @ None => *slot = Some(delta),
            };

        for i in (0..self.nodes.len()).rev() {
            let Some(g) = grads[i].clone() else { continue };
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let da = g.matmul_nt(self.value(*b));
                    let db = self.value(*a).matmul_tn(&g);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g.map(|x| -x));
                }
                Op::Mul(a, b) => {
                    let da = g.zip(self.value(*b), |x, y| x * y);
                    let db = g.zip(self.value(*a), |x, y| x * y);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::AddRow(x, row) => {
                    let (n, d) = g.shape();
                    let mut drow = Matrix::zeros(1, d);
                    for r in 0..n {
                        for c in 0..d {
                            drow.set(0, c, drow.get(0, c) + g.get(r, c));
                        }
                    }
                    accumulate(&mut grads, *x, g);
                    accumulate(&mut grads, *row, drow);
                }
                Op::Scale(a, c) => {
                    let c = *c;
                    accumulate(&mut grads, *a, g.map(|x| x * c));
                }
                Op::AddScalar(a) => accumulate(&mut grads, *a, g),
                Op::Relu(a) => {
                    let da = g.zip(self.value(*a), |gi, ai| if ai > 0.0 { gi } else { 0.0 });
                    accumulate(&mut grads, *a, da);
                }
                Op::Sigmoid(a) => {
                    let da = g.zip(&self.nodes[i].value, |gi, yi| gi * yi * (1.0 - yi));
                    accumulate(&mut grads, *a, da);
                }
                Op::Tanh(a) => {
                    let da = g.zip(&self.nodes[i].value, |gi, yi| gi * (1.0 - yi * yi));
                    accumulate(&mut grads, *a, da);
                }
                Op::Transpose(a) => accumulate(&mut grads, *a, g.transpose()),
                Op::FrobNormalize(a, norm) => {
                    let y = &self.nodes[i].value;
                    let dot: f32 = g
                        .as_slice()
                        .iter()
                        .zip(y.as_slice())
                        .map(|(&gi, &yi)| gi * yi)
                        .sum();
                    let da = g.zip(y, |gi, yi| (gi - yi * dot) / norm);
                    accumulate(&mut grads, *a, da);
                }
                Op::DivCols(x, dnode) => {
                    let (n, cols) = g.shape();
                    let dmat = self.value(*dnode);
                    let y = &self.nodes[i].value;
                    let mut dx = Matrix::zeros(n, cols);
                    let mut dd = Matrix::zeros(n, 1);
                    for r in 0..n {
                        let dr = clamp_divisor(dmat.get(r, 0));
                        let mut acc = 0.0;
                        for c in 0..cols {
                            dx.set(r, c, g.get(r, c) / dr);
                            acc += g.get(r, c) * y.get(r, c);
                        }
                        dd.set(r, 0, -acc / dr);
                    }
                    accumulate(&mut grads, *x, dx);
                    accumulate(&mut grads, *dnode, dd);
                }
                Op::MeanRows(a) => {
                    let (n, d) = self.value(*a).shape();
                    let mut da = Matrix::zeros(n, d);
                    for r in 0..n {
                        for c in 0..d {
                            da.set(r, c, g.get(0, c) / n.max(1) as f32);
                        }
                    }
                    accumulate(&mut grads, *a, da);
                }
                Op::SumAll(a) => {
                    let (n, d) = self.value(*a).shape();
                    accumulate(&mut grads, *a, Matrix::full(n, d, g.get(0, 0)));
                }
                Op::Spmm(at, x) => {
                    let d = g.cols();
                    let dx = at.matmul_dense(g.as_slice(), d);
                    accumulate(&mut grads, *x, Matrix::from_vec(at.rows(), d, dx));
                }
                Op::BceWithLogits(z, target) => {
                    let zv = self.value(*z).get(0, 0);
                    let sig = 1.0 / (1.0 + (-zv).exp());
                    let dz = g.get(0, 0) * (sig - target);
                    accumulate(&mut grads, *z, Matrix::from_vec(1, 1, vec![dz]));
                }
            }
        }
        Gradients { grads }
    }
}

impl std::fmt::Debug for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tape({} nodes)", self.nodes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks d(loss)/d(leaf) for a scalar-loss builder.
    fn grad_check(leaves: &[Matrix], build: impl Fn(&mut Tape, &[NodeId]) -> NodeId, tol: f32) {
        // analytic gradients
        let mut tape = Tape::new();
        let ids: Vec<NodeId> = leaves.iter().map(|m| tape.leaf(m.clone())).collect();
        let loss = build(&mut tape, &ids);
        let grads = tape.backward(loss);

        let eps = 1e-2f32;
        for (li, leaf) in leaves.iter().enumerate() {
            let analytic = grads.get(ids[li], &tape);
            for idx in 0..leaf.as_slice().len() {
                let eval = |delta: f32| {
                    let mut perturbed: Vec<Matrix> = leaves.to_vec();
                    perturbed[li].as_mut_slice()[idx] += delta;
                    let mut t = Tape::new();
                    let ids: Vec<NodeId> = perturbed.iter().map(|m| t.leaf(m.clone())).collect();
                    let l = build(&mut t, &ids);
                    t.value(l).get(0, 0)
                };
                let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
                let a = analytic.as_slice()[idx];
                assert!(
                    (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                    "leaf {li} element {idx}: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    fn m(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn grad_matmul_chain() {
        grad_check(
            &[m(&[&[0.5, -1.0], &[2.0, 0.3]]), m(&[&[1.0], &[-0.5]])],
            |t, ids| {
                let y = t.matmul(ids[0], ids[1]);
                t.sum_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_elementwise_ops() {
        grad_check(
            &[m(&[&[0.5, -1.0, 0.25]]), m(&[&[0.1, 0.2, -0.4]])],
            |t, ids| {
                let s = t.add(ids[0], ids[1]);
                let d = t.sub(s, ids[1]);
                let p = t.mul(d, ids[0]);
                let sc = t.scale(p, 1.5);
                let sh = t.add_scalar(sc, 0.2);
                t.sum_all(sh)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_nonlinearities() {
        grad_check(
            &[m(&[&[0.5, -1.0, 2.0, -0.2]])],
            |t, ids| {
                let r = t.tanh(ids[0]);
                let s = t.sigmoid(r);
                let u = t.relu(s);
                t.sum_all(u)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_add_row_broadcast() {
        grad_check(
            &[
                m(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]),
                m(&[&[0.5, -0.5]]),
            ],
            |t, ids| {
                let y = t.add_row(ids[0], ids[1]);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_frob_normalize() {
        grad_check(
            &[
                m(&[&[1.0, 2.0], &[-0.5, 0.7]]),
                m(&[&[0.3, -1.2], &[0.8, 0.1]]),
            ],
            |t, ids| {
                let q = t.frob_normalize(ids[0]);
                let y = t.mul(q, ids[1]);
                t.sum_all(y)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_div_cols() {
        grad_check(
            &[m(&[&[1.0, 2.0], &[3.0, 4.0]]), m(&[&[2.0], &[4.0]])],
            |t, ids| {
                let y = t.div_cols(ids[0], ids[1]);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_mean_rows_and_transpose() {
        grad_check(
            &[m(&[&[1.0, -2.0], &[0.5, 3.0]])],
            |t, ids| {
                let tr = t.transpose(ids[0]);
                let tr2 = t.transpose(tr);
                let mr = t.mean_rows(tr2);
                let sq = t.mul(mr, mr);
                t.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_spmm() {
        let a = Rc::new(CsrMatrix::from_triplets(
            2,
            3,
            &[(0, 0, 1.0), (0, 2, -2.0), (1, 1, 0.5)],
        ));
        let at = Rc::new(a.transpose());
        grad_check(
            &[m(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]])],
            move |t, ids| {
                let y = t.spmm(Rc::clone(&a), Rc::clone(&at), ids[0]);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_bce_with_logits() {
        for target in [0.0, 1.0, 0.3] {
            grad_check(
                &[m(&[&[0.7]])],
                move |t, ids| t.bce_with_logits(ids[0], target),
                1e-2,
            );
        }
    }

    #[test]
    fn bce_value_matches_reference() {
        let mut t = Tape::new();
        let z = t.leaf(Matrix::from_vec(1, 1, vec![0.0]));
        let l = t.bce_with_logits(z, 1.0);
        // -ln σ(0) = ln 2
        assert!((t.value(l).get(0, 0) - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn unused_leaf_has_zero_grad() {
        let mut t = Tape::new();
        let a = t.leaf(m(&[&[1.0]]));
        let b = t.leaf(m(&[&[5.0]]));
        let loss = t.sum_all(a);
        let g = t.backward(loss);
        assert_eq!(g.get(b, &t).as_slice(), &[0.0]);
        assert_eq!(g.get(a, &t).as_slice(), &[1.0]);
    }

    #[test]
    fn fan_out_accumulates() {
        // loss = sum(a ⊙ a) via two paths: d/da = 2a
        let mut t = Tape::new();
        let a = t.leaf(m(&[&[3.0]]));
        let p = t.mul(a, a);
        let loss = t.sum_all(p);
        let g = t.backward(loss);
        assert_eq!(g.get(a, &t).as_slice(), &[6.0]);
    }
}
