//! Bipartite message passing (Equations 6–7) and graph tensor caching.

use crate::{Linear, NodeId, ParamStore, Session, Tape};
use rand::rngs::SmallRng;
use sat_graph::{BipartiteGraph, CsrMatrix, LiteralClauseGraph};
use std::rc::Rc;

/// Cached sparse operators for one bipartite variable–clause graph, shared
/// across layers and passes.
#[derive(Debug, Clone)]
pub struct GraphTensors {
    /// Number of variable nodes.
    pub num_vars: usize,
    /// Number of clause nodes.
    pub num_clauses: usize,
    /// Mean-normalized signed aggregation into clause nodes (`C × V`).
    pub to_clause: Rc<CsrMatrix>,
    /// Transpose of [`to_clause`](Self::to_clause).
    pub to_clause_t: Rc<CsrMatrix>,
    /// Mean-normalized signed aggregation into variable nodes (`V × C`).
    pub to_var: Rc<CsrMatrix>,
    /// Transpose of [`to_var`](Self::to_var).
    pub to_var_t: Rc<CsrMatrix>,
    /// Unnormalized |weight| aggregation into clause nodes (GIN baseline).
    pub sum_to_clause: Rc<CsrMatrix>,
    /// Transpose of [`sum_to_clause`](Self::sum_to_clause).
    pub sum_to_clause_t: Rc<CsrMatrix>,
    /// Unnormalized |weight| aggregation into variable nodes (GIN baseline).
    pub sum_to_var: Rc<CsrMatrix>,
    /// Transpose of [`sum_to_var`](Self::sum_to_var).
    pub sum_to_var_t: Rc<CsrMatrix>,
    /// Per-variable `(log-degree, positive-occurrence fraction)`.
    pub var_structure: Vec<(f32, f32)>,
    /// Per-clause `(log-length, positive-literal fraction)`.
    pub clause_structure: Vec<(f32, f32)>,
}

impl GraphTensors {
    /// Precomputes the aggregation operators for a graph.
    pub fn new(graph: &BipartiteGraph) -> Self {
        let to_clause = Rc::new(graph.clause_to_var.row_normalized());
        let to_var = Rc::new(graph.var_to_clause.row_normalized());
        let abs = |m: &CsrMatrix| -> CsrMatrix {
            let triplets: Vec<(u32, u32, f32)> = (0..m.rows())
                .flat_map(|r| m.row(r).iter().map(move |&(c, w)| (r as u32, c, w.abs())))
                .collect();
            CsrMatrix::from_triplets(m.rows(), m.cols(), &triplets)
        };
        let sum_to_clause = Rc::new(abs(&graph.clause_to_var));
        let sum_to_var = Rc::new(abs(&graph.var_to_clause));
        let structure = |m: &CsrMatrix| -> Vec<(f32, f32)> {
            (0..m.rows())
                .map(|r| {
                    let row = m.row(r);
                    let deg = row.len() as f32;
                    let pos = row.iter().filter(|&&(_, w)| w > 0.0).count() as f32;
                    ((1.0 + deg).ln(), if deg > 0.0 { pos / deg } else { 0.5 })
                })
                .collect()
        };
        GraphTensors {
            var_structure: structure(&graph.var_to_clause),
            clause_structure: structure(&graph.clause_to_var),
            num_vars: graph.num_vars,
            num_clauses: graph.num_clauses,
            to_clause_t: Rc::new(to_clause.transpose()),
            to_var_t: Rc::new(to_var.transpose()),
            sum_to_clause_t: Rc::new(sum_to_clause.transpose()),
            sum_to_var_t: Rc::new(sum_to_var.transpose()),
            to_clause,
            to_var,
            sum_to_clause,
            sum_to_var,
        }
    }
}

/// One bipartite message-passing layer implementing Equations (6) and (7):
/// clauses aggregate from variables, then variables aggregate from the
/// updated clauses.
///
/// Per the paper, the message `MLP` is a single linear layer; the update is
/// `h' = σ(W₂(m + W₃ h))` with σ = ReLU.
#[derive(Debug, Clone)]
pub struct BipartiteMpnn {
    msg_from_var: Linear,
    self_clause: Linear,
    out_clause: Linear,
    msg_from_clause: Linear,
    self_var: Linear,
    out_var: Linear,
}

impl BipartiteMpnn {
    /// Creates a layer with hidden width `dim` on both node types.
    pub fn new(store: &mut ParamStore, dim: usize, rng: &mut SmallRng) -> Self {
        BipartiteMpnn {
            msg_from_var: Linear::new(store, dim, dim, rng),
            self_clause: Linear::new(store, dim, dim, rng),
            out_clause: Linear::new(store, dim, dim, rng),
            msg_from_clause: Linear::new(store, dim, dim, rng),
            self_var: Linear::new(store, dim, dim, rng),
            out_var: Linear::new(store, dim, dim, rng),
        }
    }

    /// Applies the layer to `(var_features, clause_features)`, returning the
    /// updated pair.
    pub fn forward(
        &self,
        tape: &mut Tape,
        sess: &mut Session,
        store: &ParamStore,
        g: &GraphTensors,
        x_var: NodeId,
        x_clause: NodeId,
    ) -> (NodeId, NodeId) {
        // Equation (6) for clauses: m_c = mean_{v ∈ c} w_vc · W(h_v)
        let hv_msg = self.msg_from_var.forward(tape, sess, store, x_var);
        let m_c = tape.spmm(Rc::clone(&g.to_clause), Rc::clone(&g.to_clause_t), hv_msg);
        // Equation (7): h_c' = σ(W(m_c + W(h_c)))
        let hc_self = self.self_clause.forward(tape, sess, store, x_clause);
        let hc_sum = tape.add(m_c, hc_self);
        let hc_out = self.out_clause.forward(tape, sess, store, hc_sum);
        let h_clause = tape.relu(hc_out);

        // The symmetric update for variables, using fresh clause features.
        let hc_msg = self.msg_from_clause.forward(tape, sess, store, h_clause);
        let m_v = tape.spmm(Rc::clone(&g.to_var), Rc::clone(&g.to_var_t), hc_msg);
        let hv_self = self.self_var.forward(tape, sess, store, x_var);
        let hv_sum = tape.add(m_v, hv_self);
        let hv_out = self.out_var.forward(tape, sess, store, hv_sum);
        let h_var = tape.relu(hv_out);

        (h_var, h_clause)
    }
}

/// Cached operators for the NeuroSAT-style literal–clause graph.
#[derive(Debug, Clone)]
pub struct LcgTensors {
    /// Number of variables (`2×` literals).
    pub num_vars: usize,
    /// Number of clauses.
    pub num_clauses: usize,
    /// Aggregation into clauses (`C × 2V`, mean-normalized).
    pub to_clause: Rc<CsrMatrix>,
    /// Transpose of [`to_clause`](Self::to_clause).
    pub to_clause_t: Rc<CsrMatrix>,
    /// Aggregation into literals (`2V × C`, mean-normalized).
    pub to_lit: Rc<CsrMatrix>,
    /// Transpose of [`to_lit`](Self::to_lit).
    pub to_lit_t: Rc<CsrMatrix>,
    /// The literal-flip permutation (`2V × 2V`), its own transpose.
    pub flip: Rc<CsrMatrix>,
}

impl LcgTensors {
    /// Precomputes the aggregation operators for a literal–clause graph.
    pub fn new(graph: &LiteralClauseGraph) -> Self {
        let to_clause = Rc::new(graph.clause_to_lit.row_normalized());
        let to_lit = Rc::new(graph.lit_to_clause.row_normalized());
        let n = 2 * graph.num_vars;
        let flip_triplets: Vec<(u32, u32, f32)> = (0..n as u32).map(|i| (i, i ^ 1, 1.0)).collect();
        let flip = Rc::new(CsrMatrix::from_triplets(n, n, &flip_triplets));
        LcgTensors {
            num_vars: graph.num_vars,
            num_clauses: graph.num_clauses,
            to_clause_t: Rc::new(to_clause.transpose()),
            to_lit_t: Rc::new(to_lit.transpose()),
            to_clause,
            to_lit,
            flip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init_rng, Matrix};

    fn tiny_graph() -> BipartiteGraph {
        let f = cnf::parse_dimacs_str("p cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        BipartiteGraph::from_cnf(&f)
    }

    #[test]
    fn tensors_have_consistent_shapes() {
        let g = GraphTensors::new(&tiny_graph());
        assert_eq!(g.to_clause.rows(), 2);
        assert_eq!(g.to_clause.cols(), 3);
        assert_eq!(g.to_var.rows(), 3);
        assert_eq!(g.to_clause_t.rows(), 3);
        assert_eq!(g.sum_to_var.rows(), 3);
    }

    #[test]
    fn signed_normalization() {
        let g = GraphTensors::new(&tiny_graph());
        // clause 0 = {x1, ¬x2}: mean over 2 vars with signs +, -
        assert_eq!(g.to_clause.row(0), &[(0, 0.5), (1, -0.5)][..]);
        // GIN aggregation is unsigned and unnormalized
        assert_eq!(g.sum_to_clause.row(0), &[(0, 1.0), (1, 1.0)][..]);
    }

    #[test]
    fn mpnn_forward_shapes_and_grads() {
        let graph = tiny_graph();
        let tensors = GraphTensors::new(&graph);
        let mut store = ParamStore::new();
        // Seed chosen so the final ReLU keeps at least one activation alive;
        // an all-negative draw would zero every gradient below.
        let mut rng = init_rng(7);
        let layer = BipartiteMpnn::new(&mut store, 4, &mut rng);
        let mut tape = Tape::new();
        let mut sess = Session::new(&store);
        let xv = tape.leaf(Matrix::full(3, 4, 1.0));
        let xc = tape.leaf(Matrix::zeros(2, 4));
        let (hv, hc) = layer.forward(&mut tape, &mut sess, &store, &tensors, xv, xc);
        assert_eq!(tape.value(hv).shape(), (3, 4));
        assert_eq!(tape.value(hc).shape(), (2, 4));
        // gradients flow to every bound parameter
        let pooled = tape.mean_rows(hv);
        let loss = tape.sum_all(pooled);
        let grads = tape.backward(loss);
        assert_eq!(sess.bindings().len(), 12); // 6 linears × (w, b)
        let any_nonzero = sess
            .bindings()
            .iter()
            .any(|&(_, node)| grads.get(node, &tape).as_slice().iter().any(|&x| x != 0.0));
        assert!(any_nonzero, "some parameter must receive gradient");
    }

    #[test]
    fn lcg_flip_is_involution() {
        let f = cnf::parse_dimacs_str("p cnf 2 1\n1 -2 0\n").unwrap();
        let lcg = sat_graph::LiteralClauseGraph::from_cnf(&f);
        let t = LcgTensors::new(&lcg);
        // flip twice = identity on any feature matrix
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let once = t.flip.matmul_dense(x.as_slice(), 1);
        let twice = t.flip.matmul_dense(&once, 1);
        assert_eq!(twice, x.as_slice());
        assert_eq!(once, vec![2.0, 1.0, 4.0, 3.0]);
    }
}
