//! Plain-text (de)serialization of parameter stores.
//!
//! The format is a self-contained line-oriented text file:
//!
//! ```text
//! neuro-params v1
//! tensors <count>
//! tensor <rows> <cols>
//! <row of floats>
//! …
//! ```
//!
//! Floats are written with full round-trip precision. No external
//! serialization crates are required.

use crate::{Matrix, ParamStore};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// An error produced while loading parameters.
#[derive(Debug)]
pub enum LoadParamsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid content.
    Format(String),
}

impl fmt::Display for LoadParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadParamsError::Io(e) => write!(f, "i/o error loading parameters: {e}"),
            LoadParamsError::Format(m) => write!(f, "invalid parameter file: {m}"),
        }
    }
}

impl Error for LoadParamsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadParamsError::Io(e) => Some(e),
            LoadParamsError::Format(_) => None,
        }
    }
}

impl From<io::Error> for LoadParamsError {
    fn from(e: io::Error) -> Self {
        LoadParamsError::Io(e)
    }
}

fn format_err(m: impl Into<String>) -> LoadParamsError {
    LoadParamsError::Format(m.into())
}

/// Hard ceiling on the element count of a single tensor (64M floats =
/// 256 MiB). Declared shapes are *attacker-controlled input* until the
/// shape check against the model runs, so the loader must never allocate
/// proportionally to them; any real NeuroSelect model is orders of
/// magnitude smaller.
const MAX_TENSOR_ELEMS: usize = 1 << 26;

/// Writes every parameter value of `store` to `writer`.
///
/// Pass `&mut writer` if you need the writer back afterwards.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use neuro::{load_params, save_params, Matrix, ParamStore};
/// let mut store = ParamStore::new();
/// let id = store.add(Matrix::from_rows(&[&[1.5, -2.0]]));
/// let mut buf = Vec::new();
/// save_params(&mut buf, &store)?;
/// let mut restored = ParamStore::new();
/// restored.add(Matrix::zeros(1, 2));
/// load_params(buf.as_slice(), &mut restored)?;
/// assert_eq!(restored.value(id), store.value(id));
/// # Ok(())
/// # }
/// ```
pub fn save_params<W: Write>(mut writer: W, store: &ParamStore) -> io::Result<()> {
    writeln!(writer, "neuro-params v1")?;
    writeln!(writer, "tensors {}", store.len())?;
    for (_, m) in store.iter() {
        writeln!(writer, "tensor {} {}", m.rows(), m.cols())?;
        for r in 0..m.rows() {
            let row: Vec<String> = m.row(r).iter().map(|x| format!("{x:?}")).collect();
            writeln!(writer, "{}", row.join(" "))?;
        }
    }
    Ok(())
}

/// Loads parameter values from `reader` into `store`, which must already
/// contain the same number of tensors with the same shapes (i.e. the model
/// must be constructed first with the same architecture).
///
/// Pass `&mut reader` if you need the reader back afterwards.
///
/// # Errors
///
/// Returns [`LoadParamsError`] on I/O failure, a bad header, a count or
/// shape mismatch, or unparsable floats.
pub fn load_params<R: BufRead>(reader: R, store: &mut ParamStore) -> Result<(), LoadParamsError> {
    let mut lines = reader.lines();
    let mut next = || -> Result<String, LoadParamsError> {
        lines
            .next()
            .ok_or_else(|| format_err("unexpected end of file"))?
            .map_err(LoadParamsError::from)
    };
    let header = next()?;
    if header.trim() != "neuro-params v1" {
        return Err(format_err(format!("bad header `{header}`")));
    }
    let count_line = next()?;
    let count: usize = count_line
        .strip_prefix("tensors ")
        .and_then(|t| t.trim().parse().ok())
        .ok_or_else(|| format_err("missing tensor count"))?;
    if count != store.len() {
        return Err(format_err(format!(
            "file has {count} tensors, model expects {}",
            store.len()
        )));
    }
    // `count` equals the live model's tensor count here, so this
    // preallocation is bounded by the caller, not the file.
    let mut values = Vec::with_capacity(count);
    for t in 0..count {
        let shape_line = next()?;
        let mut parts = shape_line.split_whitespace();
        if parts.next() != Some("tensor") {
            return Err(format_err(format!("tensor {t}: missing `tensor` header")));
        }
        let rows: usize = parts
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| format_err(format!("tensor {t}: bad row count")))?;
        let cols: usize = parts
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| format_err(format!("tensor {t}: bad column count")))?;
        let elems = rows
            .checked_mul(cols)
            .filter(|&n| n <= MAX_TENSOR_ELEMS)
            .ok_or_else(|| {
                format_err(format!(
                    "tensor {t}: declared shape {rows}x{cols} too large"
                ))
            })?;
        let mut data = Vec::with_capacity(elems);
        for r in 0..rows {
            let row_line = next()?;
            let mut row_len = 0usize;
            for x in row_line.split_whitespace() {
                let v: f32 = x
                    .parse()
                    .map_err(|_| format_err(format!("tensor {t}, row {r}: bad float")))?;
                if !v.is_finite() {
                    return Err(format_err(format!(
                        "tensor {t}, row {r}: non-finite value {v}"
                    )));
                }
                row_len += 1;
                if row_len > cols {
                    break;
                }
                data.push(v);
            }
            if row_len != cols {
                return Err(format_err(format!(
                    "tensor {t}, row {r}: expected {cols} values, found {}",
                    if row_len > cols {
                        String::from("more")
                    } else {
                        row_len.to_string()
                    }
                )));
            }
        }
        values.push(Matrix::from_vec(rows, cols, data));
    }
    // Shape-check before committing.
    for ((_, current), new) in store.iter().zip(&values) {
        if current.shape() != new.shape() {
            return Err(format_err(format!(
                "shape mismatch: model {:?} vs file {:?}",
                current.shape(),
                new.shape()
            )));
        }
    }
    store.load_values(values);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.add(Matrix::from_rows(&[&[1.0, -2.5], &[0.125, 3.0e-7]]));
        s.add(Matrix::from_rows(&[&[42.0]]));
        s
    }

    #[test]
    fn roundtrip_exact() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&mut buf, &store).unwrap();
        let mut restored = sample_store();
        // scrub values to prove loading restores them
        for i in 0..restored.len() {
            let id = restored.iter().nth(i).unwrap().0;
            let (r, c) = restored.value(id).shape();
            *restored.value_mut(id) = Matrix::zeros(r, c);
        }
        load_params(buf.as_slice(), &mut restored).unwrap();
        for ((_, a), (_, b)) in store.iter().zip(restored.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_bad_header() {
        let mut store = sample_store();
        let err = load_params("nonsense\n".as_bytes(), &mut store).unwrap_err();
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn rejects_count_mismatch() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&mut buf, &store).unwrap();
        let mut other = ParamStore::new();
        other.add(Matrix::zeros(1, 1));
        assert!(load_params(buf.as_slice(), &mut other).is_err());
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut buf = Vec::new();
        save_params(&mut buf, &sample_store()).unwrap();
        let mut other = ParamStore::new();
        other.add(Matrix::zeros(2, 2));
        other.add(Matrix::zeros(1, 2)); // wrong second shape
        assert!(load_params(buf.as_slice(), &mut other).is_err());
    }

    #[test]
    fn rejects_huge_declared_shapes_without_allocating() {
        // A hostile header declaring a ~10^18-element tensor must fail
        // fast on the shape ceiling, not attempt the allocation.
        let mut store = sample_store();
        let text = "neuro-params v1\ntensors 2\ntensor 4294967295 4294967295\n";
        let err = load_params(text.as_bytes(), &mut store).unwrap_err();
        assert!(err.to_string().contains("too large"), "{err}");
        let text = "neuro-params v1\ntensors 2\ntensor 1000000 1000000\n";
        let err = load_params(text.as_bytes(), &mut store).unwrap_err();
        assert!(err.to_string().contains("too large"), "{err}");
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in ["NaN", "inf", "-inf"] {
            let mut store = ParamStore::new();
            store.add(Matrix::zeros(1, 2));
            let text = format!("neuro-params v1\ntensors 1\ntensor 1 2\n1.0 {bad}\n");
            let err = load_params(text.as_bytes(), &mut store).unwrap_err();
            assert!(err.to_string().contains("non-finite"), "{bad}: {err}");
        }
    }

    #[test]
    fn rejects_overlong_rows() {
        let mut store = ParamStore::new();
        store.add(Matrix::zeros(1, 2));
        let text = "neuro-params v1\ntensors 1\ntensor 1 2\n1.0 2.0 3.0\n";
        assert!(load_params(text.as_bytes(), &mut store).is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&mut buf, &store).unwrap();
        let truncated = &buf[..buf.len() / 2];
        let mut restored = sample_store();
        assert!(load_params(truncated, &mut restored).is_err());
    }
}
